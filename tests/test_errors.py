"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import (
    ComputationBudgetError,
    DatasetError,
    DeadlineExceededError,
    DimensionalityError,
    DuplicateObjectError,
    EstimationError,
    ExperimentError,
    InvalidProbabilityError,
    PreferenceError,
    ReproError,
    RobustnessPolicyError,
    UnknownPreferenceError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            DatasetError,
            DimensionalityError,
            DuplicateObjectError,
            PreferenceError,
            UnknownPreferenceError,
            InvalidProbabilityError,
            ComputationBudgetError,
            EstimationError,
            ExperimentError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)

    def test_dataset_specialisations(self):
        assert issubclass(DimensionalityError, DatasetError)
        assert issubclass(DuplicateObjectError, DatasetError)

    def test_preference_specialisations(self):
        assert issubclass(UnknownPreferenceError, PreferenceError)
        assert issubclass(InvalidProbabilityError, PreferenceError)

    def test_stdlib_compatibility(self):
        # catchable by generic stdlib handlers where that is idiomatic
        assert issubclass(UnknownPreferenceError, KeyError)
        assert issubclass(InvalidProbabilityError, ValueError)

    def test_unknown_preference_message_readable(self):
        error = UnknownPreferenceError(2, "alpha", "beta")
        assert "alpha" in str(error)
        assert "dimension 2" in str(error)
        assert error.dimension == 2
        assert (error.a, error.b) == ("alpha", "beta")

    def test_single_catch_at_api_boundary(self):
        # the documented pattern: one except ReproError around any call
        from repro.core.objects import Dataset

        with pytest.raises(ReproError):
            Dataset([])


def _raise_unknown_preference():
    # module-level so a ProcessPoolExecutor worker can import and run it
    raise UnknownPreferenceError(3, "left", "right")


class TestPickleFidelity:
    """Every library error must cross a process boundary intact.

    ``batch_skyline_probabilities`` runs queries in worker processes;
    their exceptions travel back through ``pickle``, which reconstructs an
    exception as ``cls(*args)``.  Any subclass whose constructor signature
    diverges from its ``args`` (historically
    :class:`UnknownPreferenceError`) would arrive as an opaque
    ``TypeError`` instead of the real error — so fidelity is pinned here
    for the whole hierarchy.
    """

    ALL_ERRORS = [
        ReproError,
        DatasetError,
        DimensionalityError,
        DuplicateObjectError,
        PreferenceError,
        InvalidProbabilityError,
        ComputationBudgetError,
        DeadlineExceededError,
        RobustnessPolicyError,
        EstimationError,
        ExperimentError,
    ]

    @pytest.mark.parametrize(
        "exception", ALL_ERRORS, ids=lambda e: e.__name__
    )
    def test_message_errors_round_trip(self, exception):
        original = exception("boom: the message")
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is exception
        assert clone.args == original.args
        assert str(clone) == str(original)

    def test_unknown_preference_error_round_trips_with_attributes(self):
        original = UnknownPreferenceError(2, "alpha", "beta")
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is UnknownPreferenceError
        assert clone.dimension == 2
        assert (clone.a, clone.b) == ("alpha", "beta")
        assert str(clone) == str(original)
        assert isinstance(clone, KeyError)

    def test_unknown_preference_error_crosses_a_real_process_boundary(self):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_raise_unknown_preference)
            with pytest.raises(UnknownPreferenceError) as caught:
                future.result()
        assert caught.value.dimension == 3
        assert (caught.value.a, caught.value.b) == ("left", "right")


class TestRobustnessValidation:
    """Satellite (a): malformed fault-tolerance parameters fail fast via
    :func:`repro.core.bounds.validate_robustness` (the companion of
    ``validate_accuracy``)."""

    def test_accepts_none_and_sensible_values(self):
        import numpy as np

        from repro.core.bounds import validate_robustness

        validate_robustness()
        validate_robustness(deadline=0.5, max_retries=0, backoff=0.0)
        validate_robustness(
            deadline=np.float64(1.5), max_retries=np.int64(3), backoff=2
        )

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"deadline": 0}, "deadline"),
            ({"deadline": float("nan")}, "deadline"),
            ({"max_retries": -1}, "max_retries"),
            ({"max_retries": True}, "max_retries"),
            ({"backoff": -0.01}, "backoff"),
            ({"backoff": float("inf")}, "backoff"),
        ],
    )
    def test_rejects_malformed_parameters(self, kwargs, match):
        from repro.core.bounds import validate_robustness

        with pytest.raises(RobustnessPolicyError, match=match):
            validate_robustness(**kwargs)

    def test_policy_error_sits_under_budget_errors(self):
        assert issubclass(RobustnessPolicyError, ComputationBudgetError)
        assert issubclass(DeadlineExceededError, ComputationBudgetError)


class TestAccuracyValidation:
    """Malformed ε/δ/samples fail fast at the engine boundary, not deep
    inside the samplers as a division error."""

    @pytest.fixture
    def engine(self):
        from repro.core.engine import SkylineProbabilityEngine
        from repro.data.examples import running_example

        dataset, preferences = running_example()
        return SkylineProbabilityEngine(dataset, preferences)

    @pytest.mark.parametrize("epsilon", [0, 1, 1.5, -0.2, "x", None])
    def test_bad_epsilon(self, engine, epsilon):
        with pytest.raises(EstimationError, match="epsilon"):
            engine.skyline_probability(0, method="sam", epsilon=epsilon)

    @pytest.mark.parametrize("delta", [0, 1, 2.0, -1, "y", None])
    def test_bad_delta(self, engine, delta):
        with pytest.raises(EstimationError, match="delta"):
            engine.skyline_probability(0, method="sam", delta=delta)

    @pytest.mark.parametrize("samples", [0, -5, 2.5, "many", True])
    def test_bad_samples(self, engine, samples):
        with pytest.raises(EstimationError, match="samples"):
            engine.skyline_probability(0, method="sam", samples=samples)

    def test_exact_methods_validate_too(self, engine):
        # the parameters are unused by "det" but still checked, so a typo
        # cannot silently pass through an exact query
        with pytest.raises(EstimationError, match="epsilon"):
            engine.skyline_probability(0, method="det", epsilon=0)

    def test_batch_path_validates(self, engine):
        with pytest.raises(EstimationError, match="delta"):
            engine.skyline_probabilities(method="sam", delta=1)

    def test_catchable_as_repro_error(self, engine):
        with pytest.raises(ReproError):
            engine.skyline_probability(0, method="sam", samples=-1)

    def test_validate_accuracy_accepts_numpy_integers(self):
        import numpy as np

        from repro.core.bounds import validate_accuracy

        validate_accuracy(0.05, 0.05, np.int64(100))
        validate_accuracy(0.5, 0.5, None)
