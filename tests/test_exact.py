"""Unit tests for the deterministic algorithm (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.exact import (
    bonferroni_bounds,
    inclusion_exclusion_layer_sums,
    skyline_probability_det,
)
from repro.core.naive import skyline_probability_naive
from repro.core.preferences import PreferenceModel
from repro.data.examples import (
    RUNNING_EXAMPLE_LAYER_SUMS,
    RUNNING_EXAMPLE_SKY_O,
    running_example,
)
from repro.errors import ComputationBudgetError


@pytest.fixture
def running_parts():
    dataset, preferences = running_example()
    return preferences, list(dataset.others(0)), dataset[0]


class TestSkylineProbabilityDet:
    def test_running_example(self, running_parts):
        preferences, competitors, target = running_parts
        result = skyline_probability_det(preferences, competitors, target)
        assert result.probability == pytest.approx(RUNNING_EXAMPLE_SKY_O)
        assert result.objects_used == 4

    def test_no_competitors(self):
        result = skyline_probability_det(PreferenceModel.equal(2), [], ("a", "b"))
        assert result.probability == 1.0
        assert result.terms_evaluated == 0

    def test_duplicate_competitor_gives_zero(self):
        result = skyline_probability_det(
            PreferenceModel.equal(2), [("a", "b")], ("a", "b")
        )
        assert result.probability == 0.0
        # provenance regression: the duplicate short-circuit runs no
        # inclusion-exclusion, so nothing was "used" or evaluated
        assert result.objects_used == 0
        assert result.terms_evaluated == 0

    def test_certain_dominator_gives_zero(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 1.0)
        result = skyline_probability_det(model, [("a",)], ("o",))
        assert result.probability == 0.0

    def test_impossible_dominators_filtered(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 0.0)
        model.set_preference(0, "b", "o", 0.5)
        result = skyline_probability_det(model, [("a",), ("b",)], ("o",))
        assert result.probability == 0.5
        assert result.objects_used == 1

    def test_single_competitor(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 0.3)
        result = skyline_probability_det(model, [("a",)], ("o",))
        assert result.probability == pytest.approx(0.7)

    def test_matches_naive_on_asymmetric_space(self, tiny_space):
        dataset, preferences = tiny_space
        for index in range(len(dataset)):
            det = skyline_probability_det(
                preferences, dataset.others(index), dataset[index]
            ).probability
            naive = skyline_probability_naive(
                preferences, dataset.others(index), dataset[index]
            )
            assert det == pytest.approx(naive)

    def test_max_objects_budget(self, running_parts):
        preferences, competitors, target = running_parts
        with pytest.raises(ComputationBudgetError):
            skyline_probability_det(
                preferences, competitors, target, max_objects=2
            )

    def test_max_terms_budget(self, running_parts):
        preferences, competitors, target = running_parts
        with pytest.raises(ComputationBudgetError):
            skyline_probability_det(
                preferences, competitors, target, max_terms=3
            )

    def test_terms_evaluated_counts_all_subsets(self, running_parts):
        preferences, competitors, target = running_parts
        result = skyline_probability_det(preferences, competitors, target)
        # no zero factors in the running example, so all 2^4 - 1 subsets
        assert result.terms_evaluated == 15

    def test_without_sharing_agrees(self, running_parts):
        preferences, competitors, target = running_parts
        shared = skyline_probability_det(preferences, competitors, target)
        naive = skyline_probability_det(
            preferences, competitors, target, share_computation=False
        )
        assert naive.probability == pytest.approx(shared.probability)
        assert naive.terms_evaluated == shared.terms_evaluated

    def test_without_sharing_respects_max_terms(self, running_parts):
        preferences, competitors, target = running_parts
        with pytest.raises(ComputationBudgetError):
            skyline_probability_det(
                preferences, competitors, target,
                share_computation=False, max_terms=3,
            )

    def test_probability_clamped_to_unit_interval(self):
        # heavy cancellation should never produce values outside [0, 1]
        model = PreferenceModel.equal(1)
        competitors = [(f"v{i}",) for i in range(12)]
        result = skyline_probability_det(model, competitors, ("o",))
        assert 0.0 <= result.probability <= 1.0
        assert result.probability == pytest.approx(0.5**12)


class TestLayerSums:
    def test_running_example_layers(self, running_parts):
        preferences, competitors, target = running_parts
        sums = inclusion_exclusion_layer_sums(preferences, competitors, target, 4)
        assert sums == pytest.approx(list(RUNNING_EXAMPLE_LAYER_SUMS))

    def test_truncated_layers_are_prefix(self, running_parts):
        preferences, competitors, target = running_parts
        full = inclusion_exclusion_layer_sums(preferences, competitors, target, 4)
        short = inclusion_exclusion_layer_sums(preferences, competitors, target, 2)
        assert short == pytest.approx(full[:2])

    def test_max_size_beyond_n_is_capped(self, running_parts):
        preferences, competitors, target = running_parts
        sums = inclusion_exclusion_layer_sums(
            preferences, competitors, target, 10
        )
        assert len(sums) == 4

    def test_invalid_max_size(self, running_parts):
        preferences, competitors, target = running_parts
        with pytest.raises(ValueError):
            inclusion_exclusion_layer_sums(preferences, competitors, target, 0)

    def test_duplicate_rejected(self):
        with pytest.raises(ComputationBudgetError):
            inclusion_exclusion_layer_sums(
                PreferenceModel.equal(1), [("o",)], ("o",), 1
            )


class TestBonferroniBounds:
    def test_bracket_contains_exact(self, running_parts):
        preferences, competitors, target = running_parts
        exact = skyline_probability_det(
            preferences, competitors, target
        ).probability
        for k in (1, 2, 3):
            lower, upper = bonferroni_bounds(
                preferences, competitors, target, k
            )
            assert lower <= exact + 1e-12
            assert upper >= exact - 1e-12

    def test_collapses_at_full_depth(self, running_parts):
        preferences, competitors, target = running_parts
        lower, upper = bonferroni_bounds(preferences, competitors, target, 4)
        assert lower == pytest.approx(upper)
        assert lower == pytest.approx(RUNNING_EXAMPLE_SKY_O)

    def test_monotone_tightening(self, running_parts):
        preferences, competitors, target = running_parts
        widths = []
        for k in (1, 2, 3, 4):
            lower, upper = bonferroni_bounds(
                preferences, competitors, target, k
            )
            widths.append(upper - lower)
        assert widths == sorted(widths, reverse=True)
