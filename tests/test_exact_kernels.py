"""Differential tests for the Algorithm 1 evaluation kernels.

``skyline_probability_det`` ships three kernels for the shared-computation
traversal:

* ``"reference"`` — the original recursive transcription, the oracle;
* ``"fast"`` — an interpreter-lean rewrite performing the same float
  operations in the same order, so every result (probability,
  visited-term count, objects used) must be **bit-for-bit** equal;
* ``"vec"`` — a NumPy subset-doubling evaluation
  (:mod:`repro.core.exact_vec`): identical ``terms_evaluated``/
  ``objects_used`` provenance, probability equal within a ≤1e-12
  tolerance — relative, or absolute under inclusion-exclusion
  cancellation (different but equally valid summation order; the exact
  equality classes are pinned in ``tests/test_numerics_vec.py``).

The tri-kernel suite drives all three over the same inputs — paper
examples, preprocessed partitions, raw datasets, hypothesis-generated
spaces — and over the budget/deadline/duplicate edge cases.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings

from repro.core.dynamic import DynamicSkylineEngine
from repro.core.exact import (
    DET_KERNELS,
    skyline_probability_det,
)
from repro.core.exact_vec import VEC_MAX_OBJECTS
from repro.core.engine import SkylineProbabilityEngine
from repro.core.preferences import PreferenceModel
from repro.data.blockzipf import block_zipf_dataset
from repro.data.examples import observation_example, running_example
from repro.data.procedural import HashedPreferenceModel
from repro.errors import (
    ComputationBudgetError,
    DeadlineExceededError,
    ReproError,
)

from strategies import (
    disjoint_instance,
    shared_value_instance,
    uncertain_instance,
)

#: Relative tolerance of the vec-vs-recursive probability contract.
VEC_REL_TOL = 1e-12


def _both_kernels(preferences, competitors, target, **options):
    return (
        skyline_probability_det(
            preferences, competitors, target, kernel="fast", **options
        ),
        skyline_probability_det(
            preferences, competitors, target, kernel="reference", **options
        ),
    )


def _all_kernels(preferences, competitors, target, **options):
    return {
        kernel: skyline_probability_det(
            preferences, competitors, target, kernel=kernel, **options
        )
        for kernel in DET_KERNELS
    }


def assert_tri_kernel_agreement(results):
    """The cross-kernel contract, in one place.

    ``fast`` vs ``reference``: bit-for-bit.  ``vec`` vs ``reference``:
    integer provenance exactly equal, probability within
    :data:`VEC_REL_TOL` — relative, or absolute when inclusion-exclusion
    cancellation leaves a result much smaller than the summed terms
    (relative error is amplified there for *both* summation orders; see
    ``tests/test_numerics_vec.py``).
    """
    reference = results["reference"]
    assert results["fast"] == reference
    vec = results["vec"]
    assert vec.terms_evaluated == reference.terms_evaluated
    assert vec.objects_used == reference.objects_used
    assert vec.probability == pytest.approx(
        reference.probability, rel=VEC_REL_TOL, abs=VEC_REL_TOL
    )


class TestBitForBitEquality:
    """The original two-kernel contract: fast == reference exactly."""

    @pytest.mark.parametrize("example", [running_example, observation_example])
    def test_paper_examples(self, example):
        dataset, preferences = example()
        for index in range(len(dataset)):
            fast, reference = _both_kernels(
                preferences, list(dataset.others(index)), dataset[index]
            )
            assert fast == reference

    def test_blockzipf_partitions(self):
        dataset = block_zipf_dataset(40, 3, seed=20)
        preferences = HashedPreferenceModel(3, seed=21)
        engine = SkylineProbabilityEngine(dataset, preferences)
        for index in range(0, 40, 5):
            report = engine.skyline_probability(index, method="det+")
            prep = report.preprocessing
            competitors = list(dataset.others(index))
            for part in prep.partitions:
                group = [competitors[i] for i in part]
                fast, reference = _both_kernels(
                    preferences, group, dataset[index]
                )
                assert fast == reference

    @given(uncertain_instance())
    @settings(max_examples=40, deadline=None)
    def test_random_spaces(self, instance):
        preferences, competitors, target = instance
        fast, reference = _both_kernels(preferences, competitors, target)
        assert fast == reference

    @given(disjoint_instance())
    @settings(max_examples=30, deadline=None)
    def test_random_disjoint_spaces_with_zero_pruning(self, instance):
        # disjoint instances draw 0.0 preference probabilities, which
        # exercises both the never-dominator filter and zero-subtree
        # pruning (the analytic term count must match the visited count)
        preferences, competitors, target = instance
        fast, reference = _both_kernels(preferences, competitors, target)
        assert fast == reference

    def test_all_competitors_filtered(self):
        # a single competitor that can never dominate: n drops to 0 and
        # both kernels must report the certain skyline
        preferences = PreferenceModel(1)
        preferences.set_preference(0, "a", "o", 0.0)
        fast, reference = _both_kernels(preferences, [("a",)], ("o",))
        assert fast == reference
        assert fast.probability == 1.0
        assert fast.terms_evaluated == 0

    def test_engine_kernels_agree_end_to_end(self):
        dataset = block_zipf_dataset(25, 3, seed=22)
        preferences = HashedPreferenceModel(3, seed=23)
        default = SkylineProbabilityEngine(dataset, preferences)
        pinned = SkylineProbabilityEngine(dataset, preferences)
        for index in range(len(dataset)):
            assert default.skyline_probability(
                index, method="det+"
            ) == pinned.skyline_probability(
                index, method="det+", det_kernel="reference"
            )


class TestTriKernelDifferential:
    """vec vs fast vs reference over the same inputs."""

    @pytest.mark.parametrize("example", [running_example, observation_example])
    def test_paper_examples(self, example):
        dataset, preferences = example()
        for index in range(len(dataset)):
            assert_tri_kernel_agreement(
                _all_kernels(
                    preferences, list(dataset.others(index)), dataset[index]
                )
            )

    def test_preprocessed_blockzipf_partitions(self):
        dataset = block_zipf_dataset(40, 3, seed=20)
        preferences = HashedPreferenceModel(3, seed=21)
        engine = SkylineProbabilityEngine(dataset, preferences)
        for index in range(0, 40, 5):
            prep = engine.skyline_probability(
                index, method="det+"
            ).preprocessing
            competitors = list(dataset.others(index))
            for part in prep.partitions:
                group = [competitors[i] for i in part]
                assert_tri_kernel_agreement(
                    _all_kernels(preferences, group, dataset[index])
                )

    def test_raw_unpreprocessed_dataset(self):
        # the whole dataset as competitors, no absorption/partition —
        # one big shared-key instance per target
        dataset = block_zipf_dataset(14, 3, seed=26)
        preferences = HashedPreferenceModel(3, seed=27)
        for index in range(0, 14, 3):
            assert_tri_kernel_agreement(
                _all_kernels(
                    preferences, list(dataset.others(index)), dataset[index]
                )
            )

    @given(uncertain_instance())
    @settings(max_examples=40, deadline=None)
    def test_random_spaces(self, instance):
        preferences, competitors, target = instance
        assert_tri_kernel_agreement(
            _all_kernels(preferences, competitors, target)
        )

    @given(disjoint_instance())
    @settings(max_examples=30, deadline=None)
    def test_random_disjoint_spaces(self, instance):
        # pairwise-disjoint keys: the vec kernel's scalar (never-shared)
        # path end to end — the mask index array is never even built
        preferences, competitors, target = instance
        assert_tri_kernel_agreement(
            _all_kernels(preferences, competitors, target)
        )

    @given(shared_value_instance())
    @settings(max_examples=40, deadline=None)
    def test_random_shared_key_spaces(self, instance):
        # up to 8 doubling levels with heavy key sharing: the vec
        # kernel's masked-multiply path under load
        preferences, competitors, target = instance
        assert_tri_kernel_agreement(
            _all_kernels(preferences, competitors, target)
        )

    def test_duplicate_target_is_exact_zero(self):
        dataset, preferences = running_example()
        competitors = [dataset[0], dataset[1]]
        for kernel, result in _all_kernels(
            preferences, competitors, dataset[0]
        ).items():
            assert result.probability == 0.0, kernel
            assert result.terms_evaluated == 0
            assert result.objects_used == 0

    def test_empty_partition_is_exact_one(self):
        # all competitors filtered (never dominate): the certain skyline
        preferences = PreferenceModel(1)
        preferences.set_preference(0, "a", "o", 0.0)
        for kernel, result in _all_kernels(
            preferences, [("a",)], ("o",)
        ).items():
            assert result.probability == 1.0, kernel
            assert result.terms_evaluated == 0

    def test_singleton_partition(self):
        preferences = PreferenceModel(2)
        preferences.set_preference(0, "x", "o0", 0.3)
        preferences.set_preference(1, "y", "o1", 0.7)
        results = _all_kernels(preferences, [("x", "y")], ("o0", "o1"))
        # one competitor: a single multiplication chain, so even vec is
        # bit-identical (pinned in test_numerics_vec.py)
        assert results["vec"] == results["reference"] == results["fast"]

    def test_underflow_pruning_parity(self):
        # factors of 1e-300 make every pairwise product underflow to
        # exactly 0.0, triggering zero-subtree pruning mid-lattice; the
        # visited-term count must agree across all three kernels
        preferences = PreferenceModel(1)
        for value in ("a", "b", "c"):
            preferences.set_preference(0, value, "o", 1e-300)
        results = _all_kernels(
            preferences, [("a",), ("b",), ("c",)], ("o",)
        )
        reference = results["reference"]
        # singles visited (3), pairs visited but zero (3), the triple
        # is pruned below the zero pairs
        assert reference.terms_evaluated == 6
        assert_tri_kernel_agreement(results)

    def test_max_terms_truncation_raises_on_every_kernel(self):
        dataset, preferences = running_example()
        for kernel in DET_KERNELS:
            with pytest.raises(ComputationBudgetError, match="max_terms"):
                skyline_probability_det(
                    preferences,
                    list(dataset.others(0)),
                    dataset[0],
                    max_terms=2,
                    kernel=kernel,
                )

    def test_deadline_expiry_mid_walk_raises_on_every_kernel(self):
        dataset = block_zipf_dataset(14, 3, seed=26)
        preferences = HashedPreferenceModel(3, seed=27)
        expired = time.monotonic() - 0.001
        for kernel in DET_KERNELS:
            with pytest.raises(DeadlineExceededError):
                skyline_probability_det(
                    preferences,
                    list(dataset.others(0)),
                    dataset[0],
                    kernel=kernel,
                    deadline_at=expired,
                )

    def test_engine_degrades_vec_on_deadline(self):
        # an impossible deadline forces the engine's Det→Sam degradation
        # with the vec kernel selected, same as the recursive kernels
        dataset = block_zipf_dataset(30, 3, seed=28)
        preferences = HashedPreferenceModel(3, seed=29)
        engine = SkylineProbabilityEngine(dataset, preferences)
        report = engine.skyline_probability(
            0, method="det+", det_kernel="vec", deadline=1e-9, seed=7
        )
        assert report.degraded
        assert report.method.startswith("sam")

    def test_engine_end_to_end_vec(self):
        dataset = block_zipf_dataset(25, 3, seed=22)
        preferences = HashedPreferenceModel(3, seed=23)
        vec_engine = SkylineProbabilityEngine(dataset, preferences)
        ref_engine = SkylineProbabilityEngine(dataset, preferences)
        for index in range(len(dataset)):
            vec = vec_engine.skyline_probability(
                index, method="det+", det_kernel="vec"
            )
            reference = ref_engine.skyline_probability(
                index, method="det+", det_kernel="reference"
            )
            assert vec.probability == pytest.approx(
                reference.probability, rel=VEC_REL_TOL, abs=VEC_REL_TOL
            )

    def test_engine_memo_never_crosses_kernels(self):
        # one engine queried with both kernels: the second query must be
        # answered by its own kernel, not the other kernel's memo entry
        dataset = block_zipf_dataset(25, 3, seed=22)
        preferences = HashedPreferenceModel(3, seed=23)
        mixed = SkylineProbabilityEngine(dataset, preferences)
        pinned = SkylineProbabilityEngine(dataset, preferences)
        for index in range(len(dataset)):
            mixed.skyline_probability(index, method="det+")  # fast, memoised
            mixed_vec = mixed.skyline_probability(
                index, method="det+", det_kernel="vec"
            )
            assert mixed_vec == pinned.skyline_probability(
                index, method="det+", det_kernel="vec"
            )

    def test_batch_planner_routes_vec(self):
        dataset = block_zipf_dataset(30, 3, seed=60)
        preferences = HashedPreferenceModel(3, seed=61)
        from repro.core.batch import batch_skyline_probabilities

        serial = [
            SkylineProbabilityEngine(dataset, preferences)
            .skyline_probability(i, method="det+", det_kernel="vec")
            .probability
            for i in range(len(dataset))
        ]
        result = batch_skyline_probabilities(
            SkylineProbabilityEngine(dataset, preferences),
            method="det+",
            det_kernel="vec",
            workers=2,
        )
        assert list(result.probabilities) == serial

    def test_dynamic_engine_warm_views_match_cold_rebuild(self):
        # the dynamic engine's warm recompute must stay bit-identical to
        # a cold rebuild under the same kernel — for vec too
        dataset = block_zipf_dataset(30, 3, seed=40)
        preferences = HashedPreferenceModel(3, seed=41)
        dynamic = DynamicSkylineEngine(
            dataset, preferences.copy(), det_kernel="vec"
        )
        dynamic.insert_object(tuple(f"new{j}" for j in range(3)))
        dynamic.remove_object(0)
        cold = DynamicSkylineEngine(
            dynamic.dataset, preferences.copy(), det_kernel="vec"
        )
        for index in range(dynamic.cardinality):
            assert (
                dynamic.skyline_probability(index).probability
                == cold.skyline_probability(index).probability
            )

    def test_dynamic_engine_rejects_unknown_kernel(self):
        dataset, preferences = running_example()
        with pytest.raises(ReproError, match="det_kernel"):
            DynamicSkylineEngine(dataset, preferences, det_kernel="gpu")


class TestInstrumentationNeutrality:
    """Enabling ``repro.obs`` must never change an answer.

    The hooks only read results after the fact; no probability, RNG
    stream or kernel evaluation order may depend on the switch.
    """

    def test_kernels_bit_identical_with_obs_enabled(self):
        import repro.obs as obs

        dataset, preferences = running_example()
        competitors, target = list(dataset.others(0)), dataset[0]
        plain = _all_kernels(preferences, competitors, target)
        with obs.enabled():
            instrumented = _all_kernels(preferences, competitors, target)
        assert instrumented == plain

    @pytest.mark.parametrize(
        "method", ["det", "det+", "sam", "sam+", "naive", "auto"]
    )
    def test_engine_reports_identical_up_to_stats(self, method):
        import dataclasses

        import repro.obs as obs

        dataset, preferences = running_example()
        baseline_engine = SkylineProbabilityEngine(dataset, preferences)
        observed_engine = SkylineProbabilityEngine(dataset, preferences)
        options = dict(method=method, samples=500, seed=13)
        baseline = baseline_engine.skyline_probability(0, **options)
        with obs.enabled():
            observed = observed_engine.skyline_probability(0, **options)
        assert baseline.stats is None
        assert observed.stats is not None
        for field in dataclasses.fields(baseline):
            if field.name == "stats":
                continue
            assert getattr(observed, field.name) == getattr(
                baseline, field.name
            ), field.name


class TestBudgetsAndValidation:
    def test_max_terms_guard_applies_to_both(self):
        dataset, preferences = running_example()
        for kernel in DET_KERNELS:
            with pytest.raises(ComputationBudgetError, match="max_terms"):
                skyline_probability_det(
                    preferences,
                    list(dataset.others(0)),
                    dataset[0],
                    max_terms=2,
                    kernel=kernel,
                )

    def test_max_objects_guard_applies_to_both(self):
        dataset = block_zipf_dataset(40, 3, seed=24)
        preferences = HashedPreferenceModel(3, seed=25)
        for kernel in DET_KERNELS:
            with pytest.raises(ComputationBudgetError, match="max_objects"):
                skyline_probability_det(
                    preferences,
                    list(dataset.others(0)),
                    dataset[0],
                    max_objects=5,
                    kernel=kernel,
                )

    def test_vec_memory_ceiling_guard(self):
        # the dense subset array is O(2^n) floats, so the vec kernel
        # refuses beyond VEC_MAX_OBJECTS even when max_objects allows it
        preferences = PreferenceModel(1)
        competitors = []
        for index in range(VEC_MAX_OBJECTS + 2):
            value = f"v{index}"
            preferences.set_preference(0, value, "o", 0.5)
            competitors.append((value,))
        with pytest.raises(ComputationBudgetError, match="vec"):
            skyline_probability_det(
                preferences,
                competitors,
                ("o",),
                kernel="vec",
                max_objects=VEC_MAX_OBJECTS + 10,
            )

    def test_unknown_kernel_rejected(self):
        dataset, preferences = running_example()
        with pytest.raises(ValueError, match="kernel"):
            skyline_probability_det(
                preferences, list(dataset.others(0)), dataset[0], kernel="gpu"
            )

    def test_engine_rejects_unknown_kernel(self):
        dataset, preferences = running_example()
        engine = SkylineProbabilityEngine(dataset, preferences)
        with pytest.raises(ReproError, match="det_kernel"):
            engine.skyline_probability(0, det_kernel="gpu")

    def test_sharing_ablation_unaffected(self):
        # share_computation=False bypasses the kernels entirely; the
        # ablation baseline must still agree on the probability
        dataset, preferences = running_example()
        unshared = skyline_probability_det(
            preferences,
            list(dataset.others(0)),
            dataset[0],
            share_computation=False,
        )
        fast, reference = _both_kernels(
            preferences, list(dataset.others(0)), dataset[0]
        )
        assert unshared.probability == pytest.approx(fast.probability, abs=1e-12)
        assert fast == reference
