"""Differential tests for the Algorithm 1 evaluation kernels.

``skyline_probability_det`` ships two kernels for the shared-computation
traversal: the original recursive transcription (``"reference"``) and an
interpreter-lean rewrite (``"fast"``, the default).  The fast kernel must
perform the same float operations in the same order, so every result —
probability, visited-term count, objects used — must be bit-for-bit equal.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.exact import (
    DET_KERNELS,
    skyline_probability_det,
)
from repro.core.engine import SkylineProbabilityEngine
from repro.core.preferences import PreferenceModel
from repro.data.blockzipf import block_zipf_dataset
from repro.data.examples import observation_example, running_example
from repro.data.procedural import HashedPreferenceModel
from repro.errors import ComputationBudgetError, ReproError

from strategies import disjoint_instance, uncertain_instance


def _both_kernels(preferences, competitors, target, **options):
    return (
        skyline_probability_det(
            preferences, competitors, target, kernel="fast", **options
        ),
        skyline_probability_det(
            preferences, competitors, target, kernel="reference", **options
        ),
    )


class TestBitForBitEquality:
    @pytest.mark.parametrize("example", [running_example, observation_example])
    def test_paper_examples(self, example):
        dataset, preferences = example()
        for index in range(len(dataset)):
            fast, reference = _both_kernels(
                preferences, list(dataset.others(index)), dataset[index]
            )
            assert fast == reference

    def test_blockzipf_partitions(self):
        dataset = block_zipf_dataset(40, 3, seed=20)
        preferences = HashedPreferenceModel(3, seed=21)
        engine = SkylineProbabilityEngine(dataset, preferences)
        for index in range(0, 40, 5):
            report = engine.skyline_probability(index, method="det+")
            prep = report.preprocessing
            competitors = list(dataset.others(index))
            for part in prep.partitions:
                group = [competitors[i] for i in part]
                fast, reference = _both_kernels(
                    preferences, group, dataset[index]
                )
                assert fast == reference

    @given(uncertain_instance())
    @settings(max_examples=40, deadline=None)
    def test_random_spaces(self, instance):
        preferences, competitors, target = instance
        fast, reference = _both_kernels(preferences, competitors, target)
        assert fast == reference

    @given(disjoint_instance())
    @settings(max_examples=30, deadline=None)
    def test_random_disjoint_spaces_with_zero_pruning(self, instance):
        # disjoint instances draw 0.0 preference probabilities, which
        # exercises both the never-dominator filter and zero-subtree
        # pruning (the analytic term count must match the visited count)
        preferences, competitors, target = instance
        fast, reference = _both_kernels(preferences, competitors, target)
        assert fast == reference

    def test_all_competitors_filtered(self):
        # a single competitor that can never dominate: n drops to 0 and
        # both kernels must report the certain skyline
        preferences = PreferenceModel(1)
        preferences.set_preference(0, "a", "o", 0.0)
        fast, reference = _both_kernels(preferences, [("a",)], ("o",))
        assert fast == reference
        assert fast.probability == 1.0
        assert fast.terms_evaluated == 0

    def test_engine_kernels_agree_end_to_end(self):
        dataset = block_zipf_dataset(25, 3, seed=22)
        preferences = HashedPreferenceModel(3, seed=23)
        default = SkylineProbabilityEngine(dataset, preferences)
        pinned = SkylineProbabilityEngine(dataset, preferences)
        for index in range(len(dataset)):
            assert default.skyline_probability(
                index, method="det+"
            ) == pinned.skyline_probability(
                index, method="det+", det_kernel="reference"
            )


class TestInstrumentationNeutrality:
    """Enabling ``repro.obs`` must never change an answer.

    The hooks only read results after the fact; no probability, RNG
    stream or kernel evaluation order may depend on the switch.
    """

    def test_kernels_bit_identical_with_obs_enabled(self):
        import repro.obs as obs

        dataset, preferences = running_example()
        competitors, target = list(dataset.others(0)), dataset[0]
        plain = _both_kernels(preferences, competitors, target)
        with obs.enabled():
            instrumented = _both_kernels(preferences, competitors, target)
        assert instrumented == plain

    @pytest.mark.parametrize(
        "method", ["det", "det+", "sam", "sam+", "naive", "auto"]
    )
    def test_engine_reports_identical_up_to_stats(self, method):
        import dataclasses

        import repro.obs as obs

        dataset, preferences = running_example()
        baseline_engine = SkylineProbabilityEngine(dataset, preferences)
        observed_engine = SkylineProbabilityEngine(dataset, preferences)
        options = dict(method=method, samples=500, seed=13)
        baseline = baseline_engine.skyline_probability(0, **options)
        with obs.enabled():
            observed = observed_engine.skyline_probability(0, **options)
        assert baseline.stats is None
        assert observed.stats is not None
        for field in dataclasses.fields(baseline):
            if field.name == "stats":
                continue
            assert getattr(observed, field.name) == getattr(
                baseline, field.name
            ), field.name


class TestBudgetsAndValidation:
    def test_max_terms_guard_applies_to_both(self):
        dataset, preferences = running_example()
        for kernel in DET_KERNELS:
            with pytest.raises(ComputationBudgetError, match="max_terms"):
                skyline_probability_det(
                    preferences,
                    list(dataset.others(0)),
                    dataset[0],
                    max_terms=2,
                    kernel=kernel,
                )

    def test_max_objects_guard_applies_to_both(self):
        dataset = block_zipf_dataset(40, 3, seed=24)
        preferences = HashedPreferenceModel(3, seed=25)
        for kernel in DET_KERNELS:
            with pytest.raises(ComputationBudgetError, match="max_objects"):
                skyline_probability_det(
                    preferences,
                    list(dataset.others(0)),
                    dataset[0],
                    max_objects=5,
                    kernel=kernel,
                )

    def test_unknown_kernel_rejected(self):
        dataset, preferences = running_example()
        with pytest.raises(ValueError, match="kernel"):
            skyline_probability_det(
                preferences, list(dataset.others(0)), dataset[0], kernel="gpu"
            )

    def test_engine_rejects_unknown_kernel(self):
        dataset, preferences = running_example()
        engine = SkylineProbabilityEngine(dataset, preferences)
        with pytest.raises(ReproError, match="det_kernel"):
            engine.skyline_probability(0, det_kernel="gpu")

    def test_sharing_ablation_unaffected(self):
        # share_computation=False bypasses the kernels entirely; the
        # ablation baseline must still agree on the probability
        dataset, preferences = running_example()
        unshared = skyline_probability_det(
            preferences,
            list(dataset.others(0)),
            dataset[0],
            share_computation=False,
        )
        fast, reference = _both_kernels(
            preferences, list(dataset.others(0)), dataset[0]
        )
        assert unshared.probability == pytest.approx(fast.probability, abs=1e-12)
        assert fast == reference
