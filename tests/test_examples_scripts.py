"""The example scripts must run end to end (they are documentation)."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"example {name} missing"
    argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "Probabilistic skyline" in out
    assert "biased" in out


def test_paper_walkthrough_reproduces_numbers(capsys):
    out = _run("paper_walkthrough.py", capsys)
    assert "0.1875" in out  # sky(O) = 3/16
    assert "paper: 3/16" in out
    assert "satisfying assignments (brute force):   8" in out


def test_hotel_rooms_seasons_differ(capsys):
    out = _run("hotel_rooms.py", capsys)
    assert "SUMMER" in out and "WINTER" in out
    assert "probabilistic skyline" in out


def test_music_recommendation(capsys):
    out = _run("music_recommendation.py", capsys)
    assert "Top recommendations" in out
    assert "Exact cross-check" in out


def test_what_if_analysis(capsys):
    out = _run("what_if_analysis.py", capsys)
    assert "derivative d sky / d p" in out
    assert "uncertain" in out or "in" in out


@pytest.mark.slow
def test_nursery_admissions(capsys):
    out = _run("nursery_admissions.py", capsys)
    assert "240 distinct applications" in out
    assert "n=12960" in out
