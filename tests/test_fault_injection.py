"""Chaos suite: deterministic fault injection against the batch planner.

Contract under test (ISSUE: fault-tolerance tentpole, parts 2–3): worker
failures — raised faults, hard process kills, pickling failures — are
retried with capped exponential backoff and fall back from the process
pool to the in-process path; objects that fail permanently are salvaged
into structured :class:`BatchFailure` records; and, throughout, every
*surviving* object's answer is bit-identical to a fault-free run (the
injector fires before any randomness is consumed, so retries replay the
exact same sampled stream).

All chaos here is driven by :class:`repro.robustness.FaultInjector`,
whose decisions are a pure function of ``(seed, index, attempt)`` — the
same objects fail, in the same way, on every run and in every process.
"""

from __future__ import annotations

import pytest

from repro.core.batch import (
    BatchFailure,
    batch_skyline_probabilities,
)
from repro.core.engine import SkylineProbabilityEngine
from repro.data.blockzipf import block_zipf_dataset
from repro.data.examples import running_example
from repro.data.procedural import HashedPreferenceModel
from repro.errors import ComputationBudgetError, ReproError
from repro.robustness import (
    FAULT_KINDS,
    FaultInjector,
    InjectedFault,
    UnpicklableModel,
)

pytestmark = pytest.mark.chaos

#: Backoff base for the suites: fast enough to keep tests quick, non-zero
#: so the sleep path is exercised.
FAST = 0.001


def _engine(source="running", **kwargs):
    if source == "running":
        dataset, preferences = running_example()
    else:
        dataset = block_zipf_dataset(18, 3, seed=60)
        preferences = HashedPreferenceModel(3, seed=61)
    return SkylineProbabilityEngine(dataset, preferences, **kwargs)


def _clean(source="running", **options):
    """The fault-free reference run every chaos run is compared against."""
    return batch_skyline_probabilities(_engine(source), **options)


class TestInjectorDeterminism:
    """The injector itself: pure, replayable, pickling-safe decisions."""

    def test_decisions_pure_in_seed_index_attempt(self):
        a = FaultInjector(seed=5, crash_rate=0.4)
        b = FaultInjector(seed=5, crash_rate=0.4)
        decisions = [(i, t, a.crashes(i, t)) for i in range(50) for t in (1, 2)]
        assert decisions == [
            (i, t, b.crashes(i, t)) for i in range(50) for t in (1, 2)
        ]

    def test_different_seeds_give_different_plans(self):
        plans = {
            tuple(
                FaultInjector(seed=seed, crash_rate=0.5).crashes(i, 1)
                for i in range(64)
            )
            for seed in range(4)
        }
        assert len(plans) == 4

    def test_crash_rate_zero_never_fires(self):
        injector = FaultInjector(seed=1)
        assert not any(injector.crashes(i, 1) for i in range(100))

    def test_transient_crashes_heal_after_crash_attempts(self):
        injector = FaultInjector(seed=2, crash_rate=1.0, crash_attempts=2)
        assert injector.crashes(3, 1) and injector.crashes(3, 2)
        assert not injector.crashes(3, 3)

    def test_poison_never_heals(self):
        injector = FaultInjector(seed=2, poison={7})
        assert all(injector.crashes(7, attempt) for attempt in range(1, 10))
        assert not injector.crashes(8, 1)

    def test_before_task_raises_the_configured_exception(self):
        injector = FaultInjector(seed=0, poison={4})
        with pytest.raises(InjectedFault, match="object 4 on attempt 1"):
            injector.before_task(4, 1)

    def test_exit_kind_degrades_to_raise_in_the_coordinator(self):
        # origin_pid == os.getpid() here, so "exit" must NOT kill this
        # process — it raises instead (only real workers die hard)
        injector = FaultInjector(seed=0, poison={4}, kind="exit")
        with pytest.raises(InjectedFault):
            injector.before_task(4, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultInjector(kind="segfault")
        assert FAULT_KINDS == ("raise", "exit")

    def test_injector_is_not_a_repro_error(self):
        # injected faults model infrastructure failures; the retry layer
        # must treat them as transient, unlike deterministic ReproErrors
        assert not issubclass(InjectedFault, ReproError)


class TestRetryRecovery:
    """Transient faults are healed by retries; answers never change."""

    @pytest.mark.parametrize("method", ["det+", "sam"])
    def test_serial_retry_heals_transient_crashes(self, method):
        options = {"samples": 80, "seed": 19} if method == "sam" else {}
        clean = _clean(method=method, **options)
        chaotic = batch_skyline_probabilities(
            _engine(),
            method=method,
            fault_injector=FaultInjector(seed=1, crash_rate=1.0),
            backoff=FAST,
            **options,
        )
        assert chaotic.probabilities == clean.probabilities
        assert chaotic.reports == clean.reports
        assert chaotic.failures == ()
        assert chaotic.retries == len(_engine().dataset)

    def test_threaded_retry_heals_transient_crashes(self):
        clean = _clean("zipf", method="sam+", samples=60, seed=31)
        chaotic = batch_skyline_probabilities(
            _engine("zipf"),
            method="sam+",
            samples=60,
            seed=31,
            workers=3,
            chunk_size=2,
            executor="thread",
            fault_injector=FaultInjector(seed=4, crash_rate=0.5),
            backoff=FAST,
        )
        assert chaotic.probabilities == clean.probabilities
        assert chaotic.failures == ()
        assert chaotic.retries > 0

    def test_partial_crash_rate_only_retries_the_chosen(self):
        injector = FaultInjector(seed=9, crash_rate=0.3)
        crashing = sum(
            injector.crashes(i, 1) for i in range(len(_engine().dataset))
        )
        chaotic = batch_skyline_probabilities(
            _engine(), method="det+", fault_injector=injector, backoff=FAST
        )
        assert chaotic.retries == crashing
        assert chaotic.probabilities == _clean(method="det+").probabilities

    def test_zero_backoff_is_legal(self):
        result = batch_skyline_probabilities(
            _engine(),
            method="det+",
            fault_injector=FaultInjector(seed=1, crash_rate=1.0),
            backoff=0.0,
        )
        assert result.failures == ()


class TestSalvage:
    """Permanent faults become structured failures; the rest survive."""

    def test_poisoned_objects_are_salvaged(self):
        poison = {1, 3}
        clean = _clean(method="sam", samples=80, seed=19)
        chaotic = batch_skyline_probabilities(
            _engine(),
            method="sam",
            samples=80,
            seed=19,
            fault_injector=FaultInjector(seed=0, poison=poison),
            max_retries=2,
            backoff=FAST,
        )
        n = len(_engine().dataset)
        assert chaotic.indices == tuple(i for i in range(n) if i not in poison)
        # surviving answers bit-identical to the fault-free run
        expected = {
            index: probability
            for index, probability in zip(clean.indices, clean.probabilities)
            if index not in poison
        }
        assert chaotic.as_dict() == expected
        assert {f.index for f in chaotic.failures} == poison
        for failure in chaotic.failures:
            assert isinstance(failure, BatchFailure)
            assert failure.error_type == "InjectedFault"
            assert f"object {failure.index}" in failure.message
            assert failure.attempts == 3  # first try + max_retries

    def test_on_error_raise_propagates_the_fault(self):
        with pytest.raises(InjectedFault):
            batch_skyline_probabilities(
                _engine(),
                method="det+",
                fault_injector=FaultInjector(seed=0, poison={1}),
                on_error="raise",
                backoff=FAST,
            )

    def test_max_retries_zero_disables_re_dispatch(self):
        chaotic = batch_skyline_probabilities(
            _engine(),
            method="det+",
            fault_injector=FaultInjector(seed=1, crash_rate=1.0),
            max_retries=0,
        )
        # a single attempt that always crashes: everything is salvaged
        assert chaotic.indices == ()
        assert len(chaotic.failures) == len(_engine().dataset)
        assert chaotic.retries == 0
        assert all(f.attempts == 1 for f in chaotic.failures)

    def test_deterministic_library_errors_are_not_retried(self):
        # an exact query over a too-large event set raises
        # ComputationBudgetError deterministically; retrying cannot help,
        # so exactly one attempt is burned per object
        engine = _engine("zipf", max_exact_objects=2)
        result = batch_skyline_probabilities(
            engine, method="det", max_retries=3, backoff=FAST
        )
        assert result.retries == 0
        for failure in result.failures:
            assert failure.error_type == "ComputationBudgetError"
            assert failure.attempts == 1
        # ... and on_error="raise" surfaces it as usual
        with pytest.raises(ComputationBudgetError):
            batch_skyline_probabilities(
                engine, method="det", on_error="raise"
            )

    def test_salvaged_batch_survives_mixed_chaos(self):
        # poison + transient crashes + stragglers, threaded: survivors
        # bit-identical, poison salvaged, nothing else lost
        clean = _clean("zipf", method="sam", samples=60, seed=43)
        chaotic = batch_skyline_probabilities(
            _engine("zipf"),
            method="sam",
            samples=60,
            seed=43,
            workers=2,
            executor="thread",
            fault_injector=FaultInjector(
                seed=6,
                crash_rate=0.4,
                poison={0, 9},
                slow_rate=0.3,
                slow_seconds=0.002,
            ),
            backoff=FAST,
        )
        assert {f.index for f in chaotic.failures} == {0, 9}
        expected = {
            index: probability
            for index, probability in zip(clean.indices, clean.probabilities)
            if index not in {0, 9}
        }
        assert chaotic.as_dict() == expected


@pytest.mark.slow
class TestProcessPoolChaos:
    """The harshest failures: dead workers and broken pools (real
    ``ProcessPoolExecutor``, forced past the single-core gate)."""

    OPTIONS = dict(method="sam", samples=60, seed=13)

    def test_raised_worker_faults_recover_in_process(self):
        clean = _clean("zipf", **self.OPTIONS)
        chaotic = batch_skyline_probabilities(
            _engine("zipf"),
            workers=2,
            chunk_size=5,
            executor="process",
            fault_injector=FaultInjector(seed=2, crash_rate=0.5),
            backoff=FAST,
            **self.OPTIONS,
        )
        assert chaotic.probabilities == clean.probabilities
        assert chaotic.failures == ()
        assert chaotic.retries > 0

    def test_hard_killed_workers_break_the_pool_and_still_recover(self):
        # kind="exit" calls os._exit inside the worker: the pool comes
        # back BrokenProcessPool and every chunk re-dispatches in-process
        clean = _clean("zipf", **self.OPTIONS)
        chaotic = batch_skyline_probabilities(
            _engine("zipf"),
            workers=2,
            chunk_size=6,
            executor="process",
            fault_injector=FaultInjector(seed=3, crash_rate=1.0, kind="exit"),
            backoff=FAST,
            **self.OPTIONS,
        )
        assert chaotic.probabilities == clean.probabilities
        assert chaotic.failures == ()
        assert chaotic.retries >= 1

    def test_poison_in_a_dead_pool_is_still_salvaged(self):
        chaotic = batch_skyline_probabilities(
            _engine("zipf"),
            workers=2,
            executor="process",
            fault_injector=FaultInjector(seed=3, poison={4}, kind="exit"),
            backoff=FAST,
            **self.OPTIONS,
        )
        assert {f.index for f in chaotic.failures} == {4}
        clean = _clean("zipf", **self.OPTIONS)
        expected = {
            index: probability
            for index, probability in zip(clean.indices, clean.probabilities)
            if index != 4
        }
        assert chaotic.as_dict() == expected


class TestSerializationFaults:
    """Pickling failures select (or fall back to) the thread path."""

    def test_unpicklable_model_forces_thread_fallback(self):
        dataset = block_zipf_dataset(12, 3, seed=60)
        inner = HashedPreferenceModel(3, seed=61)
        clean = batch_skyline_probabilities(
            SkylineProbabilityEngine(dataset, inner),
            method="sam",
            samples=50,
            seed=5,
        )
        wrapped = UnpicklableModel(inner)
        assert wrapped.wrapped is inner
        chaotic = batch_skyline_probabilities(
            SkylineProbabilityEngine(dataset, wrapped),
            method="sam",
            samples=50,
            seed=5,
            workers=2,
            executor="process",  # forced — yet pickling must veto it
        )
        assert chaotic.probabilities == clean.probabilities
        assert chaotic.failures == ()

    def test_unpicklable_model_really_does_not_pickle(self):
        import pickle

        with pytest.raises(pickle.PicklingError):
            pickle.dumps(UnpicklableModel(HashedPreferenceModel(2, seed=1)))
