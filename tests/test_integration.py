"""End-to-end integration tests across generators, engine, and formats."""

from __future__ import annotations

import pytest

from repro.core.engine import SkylineProbabilityEngine
from repro.core.pruning import top_k_pruned
from repro.core.skyline import expected_skyline_size
from repro.core.topk import estimate_all_skyline_probabilities
from repro.data.blockzipf import block_zipf_dataset
from repro.data.nursery import nursery_dataset, nursery_preferences
from repro.data.prefgen import (
    anti_correlated_preferences,
    correlated_preferences,
    random_preferences,
)
from repro.data.procedural import HashedPreferenceModel
from repro.data.uniform import uniform_dataset


class TestUniformWorkflow:
    def test_exact_vs_sampling_consistency(self):
        dataset = uniform_dataset(14, 4, seed=10)
        preferences = random_preferences(dataset, seed=11)
        engine = SkylineProbabilityEngine(dataset, preferences)
        for index in (0, 7, 13):
            exact = engine.skyline_probability(index, method="det").probability
            sampled = engine.skyline_probability(
                index, method="sam", samples=30000, seed=12
            ).probability
            assert sampled == pytest.approx(exact, abs=0.015)

    def test_shared_worlds_match_engine(self):
        dataset = uniform_dataset(12, 3, seed=13)
        preferences = random_preferences(dataset, seed=14)
        engine = SkylineProbabilityEngine(dataset, preferences)
        exact = engine.skyline_probabilities(method="det+")
        shared = estimate_all_skyline_probabilities(
            preferences, dataset, samples=20000, seed=15
        )
        for estimate, reference in zip(shared.probabilities, exact):
            assert estimate == pytest.approx(reference, abs=0.02)

    def test_expected_skyline_size_bounds(self):
        dataset = uniform_dataset(15, 3, seed=16)
        preferences = random_preferences(dataset, seed=17)
        engine = SkylineProbabilityEngine(dataset, preferences)
        size = expected_skyline_size(engine.skyline_probabilities())
        assert 0.0 <= size <= len(dataset)


class TestBlockZipfWorkflow:
    def test_detplus_handles_thousands(self):
        dataset = block_zipf_dataset(3000, 4, seed=20)
        engine = SkylineProbabilityEngine(
            dataset, HashedPreferenceModel(4, seed=21)
        )
        report = engine.skyline_probability(0, method="det+")
        assert report.exact
        assert report.preprocessing.largest_partition <= 25

    def test_auto_equals_detplus_on_blockzipf(self):
        dataset = block_zipf_dataset(400, 5, seed=22)
        engine = SkylineProbabilityEngine(
            dataset, HashedPreferenceModel(5, seed=23)
        )
        for index in (0, 100, 399):
            auto = engine.skyline_probability(index, method="auto")
            detplus = engine.skyline_probability(index, method="det+")
            assert auto.probability == pytest.approx(detplus.probability)
            assert auto.exact

    def test_pruned_topk_on_blockzipf(self):
        dataset = block_zipf_dataset(150, 3, seed=24)
        preferences = HashedPreferenceModel(3, seed=25)
        engine = SkylineProbabilityEngine(dataset, preferences)
        plain = engine.top_k(4, method="det+")
        pruned = top_k_pruned(dataset, preferences, 4, method="det+")
        assert list(pruned.ranking) == plain
        assert pruned.pruned > 0


class TestCorrelationWorkflow:
    def test_correlation_controls_skyline_size(self):
        dataset = block_zipf_dataset(40, 2, blocks=1, values_per_block=10, seed=30)
        correlated = SkylineProbabilityEngine(
            dataset, correlated_preferences(dataset, 0.95)
        )
        anti = SkylineProbabilityEngine(
            dataset, anti_correlated_preferences(dataset, 0.95)
        )
        correlated_size = expected_skyline_size(
            correlated.skyline_probabilities()
        )
        anti_size = expected_skyline_size(anti.skyline_probabilities())
        assert anti_size > correlated_size


class TestNurseryWorkflow:
    def test_full_pipeline_on_projection(self):
        dims = [0, 4, 5]
        dataset = nursery_dataset(dims)
        preferences = nursery_preferences(dims, mode="ordinal", strength=0.9)
        engine = SkylineProbabilityEngine(dataset, preferences)
        probabilities = engine.skyline_probabilities()
        # the all-best application must be the likeliest skyline point
        best_index = dataset.index_of(("usual", "convenient", "convenient"))
        assert max(probabilities) == probabilities[best_index]

    def test_full_dataset_single_query_fast_and_exact(self):
        dataset = nursery_dataset()
        preferences = nursery_preferences(seed=31)
        engine = SkylineProbabilityEngine(dataset, preferences)
        report = engine.skyline_probability(0, method="auto")
        assert report.exact
        assert report.preprocessing.kept_count == 19

    def test_sampler_agrees_on_nursery(self):
        dims = [0, 1]
        dataset = nursery_dataset(dims)
        preferences = nursery_preferences(dims, seed=32)
        engine = SkylineProbabilityEngine(dataset, preferences)
        exact = engine.skyline_probability(3, method="det+").probability
        sampled = engine.skyline_probability(
            3, method="sam+", samples=30000, seed=33
        ).probability
        assert sampled == pytest.approx(exact, abs=0.01)
