"""Unit tests for file persistence (JSON and CSV)."""

from __future__ import annotations

import pytest

from repro.core.objects import Dataset
from repro.core.preferences import PreferenceModel
from repro.data.procedural import HashedPreferenceModel, LazyRankedPreferenceModel
from repro.errors import DatasetError, PreferenceError
from repro.io import (
    dataset_from_csv,
    dataset_to_csv,
    load_dataset,
    load_preferences,
    preference_model_from_dict,
    preferences_from_csv,
    preferences_to_csv,
    save_dataset,
    save_preferences,
)


@pytest.fixture
def dataset():
    return Dataset([("a", "x"), ("b", "y"), ("a", "y")], labels=["T", "U", "V"])


@pytest.fixture
def preferences():
    model = PreferenceModel(2, default=0.5)
    model.set_preference(0, "a", "b", 0.7, 0.2)
    model.set_preference(1, "x", "y", 0.4)
    return model


class TestDatasetJson:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "data.json"
        save_dataset(dataset, path)
        assert load_dataset(path) == dataset

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(DatasetError):
            load_dataset(path)


class TestDatasetCsv:
    def test_round_trip_with_labels(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        dataset_to_csv(dataset, path)
        assert dataset_from_csv(path) == dataset

    def test_round_trip_without_labels(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        dataset_to_csv(dataset, path, include_labels=False)
        restored = dataset_from_csv(path, label_column=None)
        assert restored.objects == dataset.objects
        assert restored.labels == ("Q1", "Q2", "Q3")

    def test_missing_label_column_treated_as_attributes(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("c1,c2\nu,v\nw,z\n")
        restored = dataset_from_csv(path)  # no 'label' header present
        assert restored.dimensionality == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            dataset_from_csv(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("label,dim0\n")
        with pytest.raises(DatasetError):
            dataset_from_csv(path)

    def test_ragged_row_reports_line(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("label,dim0,dim1\nT,a,x\nU,b\n")
        with pytest.raises(DatasetError, match=":3"):
            dataset_from_csv(path)

    def test_duplicates_controlled(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("dim0\nv\nv\n")
        with pytest.raises(DatasetError):
            dataset_from_csv(path, label_column=None)
        restored = dataset_from_csv(
            path, label_column=None, allow_duplicates=True
        )
        assert restored.cardinality == 2


class TestPreferencesJson:
    def test_plain_round_trip(self, preferences, tmp_path):
        path = tmp_path / "prefs.json"
        save_preferences(preferences, path)
        assert load_preferences(path) == preferences

    def test_hashed_round_trip(self, tmp_path):
        model = HashedPreferenceModel(3, seed=11, incomparable_fraction=0.2)
        model.set_preference(1, "a", "b", 0.9, 0.05)
        path = tmp_path / "hashed.json"
        save_preferences(model, path)
        restored = load_preferences(path)
        assert isinstance(restored, HashedPreferenceModel)
        assert restored.prob_prefers(0, "p", "q") == model.prob_prefers(0, "p", "q")
        assert restored.prob_prefers(1, "a", "b") == 0.9

    def test_ranked_round_trip(self, tmp_path):
        model = LazyRankedPreferenceModel(2, 0.8, flip_dimensions=(1,))
        path = tmp_path / "ranked.json"
        save_preferences(model, path)
        restored = load_preferences(path)
        assert isinstance(restored, LazyRankedPreferenceModel)
        assert restored.prob_prefers(1, "a", "b") == pytest.approx(0.2)

    def test_unknown_procedural_type(self):
        with pytest.raises(PreferenceError):
            preference_model_from_dict(
                {"dimensionality": 1, "procedural": {"type": "psychic"}}
            )

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("]")
        with pytest.raises(PreferenceError):
            load_preferences(path)


class TestPreferencesCsv:
    def test_round_trip(self, preferences, tmp_path):
        path = tmp_path / "prefs.csv"
        preferences_to_csv(preferences, path)
        restored = preferences_from_csv(path, 2, default=0.5)
        assert restored.prob_prefers(0, "a", "b") == 0.7
        assert restored.prob_prefers(0, "b", "a") == 0.2
        assert restored.prob_prefers(1, "y", "x") == pytest.approx(0.6)

    def test_empty_backward_column_means_comparable(self, tmp_path):
        path = tmp_path / "prefs.csv"
        path.write_text("dimension,a,b,prob_a_over_b,prob_b_over_a\n0,u,v,0.3,\n")
        restored = preferences_from_csv(path, 1)
        assert restored.prob_prefers(0, "v", "u") == pytest.approx(0.7)

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("dim,a,b\n0,u,v\n")
        with pytest.raises(PreferenceError, match="expected columns"):
            preferences_from_csv(path, 1)

    def test_malformed_probability_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("dimension,a,b,prob_a_over_b\n0,u,v,huh\n")
        with pytest.raises(PreferenceError, match=":2"):
            preferences_from_csv(path, 1)


class TestEndToEnd:
    def test_saved_inputs_answer_queries(self, dataset, preferences, tmp_path):
        from repro.core.engine import SkylineProbabilityEngine

        save_dataset(dataset, tmp_path / "d.json")
        save_preferences(preferences, tmp_path / "p.json")
        engine = SkylineProbabilityEngine(
            load_dataset(tmp_path / "d.json"),
            load_preferences(tmp_path / "p.json"),
        )
        direct = SkylineProbabilityEngine(dataset, preferences)
        assert engine.skyline_probability(0, method="det").probability == (
            direct.skyline_probability(0, method="det").probability
        )
