"""Tests for the query CLI (`python -m repro`)."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.data.examples import running_example
from repro.io import (
    dataset_to_csv,
    preferences_to_csv,
    save_dataset,
    save_preferences,
)


@pytest.fixture
def inputs(tmp_path):
    dataset, preferences = running_example()
    dataset_path = tmp_path / "data.json"
    save_dataset(dataset, dataset_path)
    # materialise the equal-preference pairs explicitly so the JSON model
    # stands alone (the fixture uses a default of 0.5)
    preferences_path = tmp_path / "prefs.json"
    save_preferences(preferences, preferences_path)
    return str(dataset_path), str(preferences_path)


class TestQuery:
    def test_exact_query(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        code = main(
            [
                "query", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "--target", "0", "--method", "det",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sky(O) = 0.187500" in out

    def test_json_output(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        code = main(
            [
                "query", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "--target", "0", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["probability"] == pytest.approx(3 / 16)
        assert payload["exact"] is True

    def test_sampling_query(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        code = main(
            [
                "query", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "--target", "0", "--method", "sam",
                "--samples", "2000", "--seed", "1", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["samples"] == 2000
        assert payload["probability"] == pytest.approx(3 / 16, abs=0.05)


class TestSkylineAndTopK:
    def test_skyline_threshold(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        code = main(
            [
                "skyline", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "--tau", "0.3", "--method", "det+", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        labels = {entry["label"] for entry in payload["skyline"]}
        assert "Q3" in labels  # the value-disjoint competitor scores high

    def test_topk(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        code = main(
            [
                "topk", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "-k", "2", "--method", "det+", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["ranking"]) == 2

    def test_topk_pruned_matches_plain(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        main(
            [
                "topk", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "-k", "2", "--method", "det+", "--json",
            ]
        )
        plain = json.loads(capsys.readouterr().out)
        main(
            [
                "topk", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "-k", "2", "--method", "det+", "--pruned", "--json",
            ]
        )
        pruned = json.loads(capsys.readouterr().out)
        assert plain["ranking"] == pruned["ranking"]


class TestInfoAndErrors:
    def test_info(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        code = main(
            [
                "info", "--dataset", dataset_path,
                "--preferences", preferences_path, "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["objects"] == 5
        assert payload["missing_pairs"] == 0

    def test_info_flags_missing_pairs(self, tmp_path, capsys):
        dataset, _ = running_example()
        dataset_path = tmp_path / "d.json"
        save_dataset(dataset, dataset_path)
        empty_path = tmp_path / "p.json"
        from repro.core.preferences import PreferenceModel
        save_preferences(PreferenceModel(2), empty_path)
        code = main(
            [
                "info", "--dataset", str(dataset_path),
                "--preferences", str(empty_path), "--json",
            ]
        )
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["missing_pairs"] > 0

    def test_missing_file(self, tmp_path, capsys):
        code = main(
            [
                "query", "--dataset", str(tmp_path / "absent.json"),
                "--preferences", str(tmp_path / "absent.json"),
                "--target", "0",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_csv_inputs(self, tmp_path, capsys):
        dataset, preferences = running_example()
        dataset_path = tmp_path / "d.csv"
        dataset_to_csv(dataset, dataset_path)
        # materialise all pairs for the CSV table
        from repro.data.prefgen import equal_preferences, ordered_values
        from itertools import combinations
        from repro.core.preferences import PreferenceModel

        explicit = PreferenceModel(2)
        for dimension, values in enumerate(ordered_values(dataset)):
            for a, b in combinations(values, 2):
                explicit.set_preference(dimension, a, b, 0.5, 0.5)
        preferences_path = tmp_path / "p.csv"
        preferences_to_csv(explicit, preferences_path)
        code = main(
            [
                "query", "--dataset", str(dataset_path),
                "--preferences", str(preferences_path),
                "--target", "0", "--method", "det", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["probability"] == pytest.approx(3 / 16)
