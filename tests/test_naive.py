"""Unit tests for the exhaustive possible-world enumerators."""

from __future__ import annotations

import pytest

from repro.core.naive import (
    enumerate_worlds,
    skyline_probabilities_naive,
    skyline_probability_naive,
)
from repro.core.objects import Dataset
from repro.core.preferences import PreferenceModel
from repro.errors import ComputationBudgetError


class TestSkylineProbabilityNaive:
    def test_observation_example(self, observation):
        dataset, preferences = observation
        values = [
            skyline_probability_naive(preferences, dataset.others(i), dataset[i])
            for i in range(3)
        ]
        assert values == pytest.approx([0.5, 0.25, 0.5])

    def test_running_example(self, running):
        dataset, preferences = running
        assert skyline_probability_naive(
            preferences, dataset.others(0), dataset[0]
        ) == pytest.approx(3 / 16)

    def test_no_competitors(self):
        assert skyline_probability_naive(PreferenceModel.equal(1), [], ("a",)) == 1.0

    def test_duplicate_competitor(self):
        assert (
            skyline_probability_naive(PreferenceModel.equal(1), [("a",)], ("a",))
            == 0.0
        )

    def test_certain_preferences(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 1.0)
        assert skyline_probability_naive(model, [("a",)], ("o",)) == 0.0
        model.set_preference(0, "b", "o", 0.0)
        assert skyline_probability_naive(model, [("b",)], ("o",)) == 1.0

    def test_incomparability_counts_as_not_dominated(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 0.2, 0.3)  # 0.5 incomparable
        assert skyline_probability_naive(model, [("a",)], ("o",)) == pytest.approx(0.8)

    def test_pair_budget(self):
        model = PreferenceModel.equal(1)
        competitors = [(f"v{i}",) for i in range(30)]
        with pytest.raises(ComputationBudgetError):
            skyline_probability_naive(model, competitors, ("o",), max_pairs=10)


class TestEnumerateWorlds:
    def test_probabilities_sum_to_one(self, running):
        dataset, preferences = running
        total = sum(p for _, p in enumerate_worlds(preferences, dataset))
        assert total == pytest.approx(1.0)

    def test_world_count_fully_comparable(self, observation):
        dataset, preferences = observation
        # 1 pair on dim 0 (s, t), 1 pair on dim 1 (alpha, beta), both 50/50
        # comparable-only => 2 * 2 = 4 worlds
        worlds = list(enumerate_worlds(preferences, dataset))
        assert len(worlds) == 4
        assert all(p == pytest.approx(0.25) for _, p in worlds)

    def test_three_outcomes_with_incomparability(self):
        dataset = Dataset([("a",), ("b",)])
        model = PreferenceModel(1)
        model.set_preference(0, "a", "b", 0.5, 0.3)
        worlds = list(enumerate_worlds(model, dataset))
        assert len(worlds) == 3
        assert sorted(p for _, p in worlds) == pytest.approx([0.2, 0.3, 0.5])

    def test_zero_probability_branches_skipped(self):
        dataset = Dataset([("a",), ("b",)])
        model = PreferenceModel(1)
        model.set_preference(0, "a", "b", 1.0)
        worlds = list(enumerate_worlds(model, dataset))
        assert len(worlds) == 1
        world, probability = worlds[0]
        assert probability == 1.0
        assert world[(0, "a", "b")] is True
        assert world[(0, "b", "a")] is False

    def test_worlds_record_both_orientations(self, observation):
        dataset, preferences = observation
        for world, _ in enumerate_worlds(preferences, dataset):
            assert world[(0, "s", "t")] != world[(0, "t", "s")]

    def test_budget_guard(self):
        dataset = Dataset([(f"v{i}",) for i in range(12)])  # 66 pairs
        with pytest.raises(ComputationBudgetError):
            list(enumerate_worlds(PreferenceModel.equal(1), dataset))


class TestSkylineProbabilitiesNaive:
    def test_matches_single_object_enumeration(self, running):
        dataset, preferences = running
        all_probabilities = skyline_probabilities_naive(preferences, dataset)
        for index in range(len(dataset)):
            single = skyline_probability_naive(
                preferences, dataset.others(index), dataset[index]
            )
            assert all_probabilities[index] == pytest.approx(single)

    def test_certain_world_single_skyline(self):
        dataset = Dataset([("best",), ("worst",)])
        model = PreferenceModel(1)
        model.set_preference(0, "best", "worst", 1.0)
        assert skyline_probabilities_naive(model, dataset) == [1.0, 0.0]

    def test_figure2_sample_space_masses(self, observation):
        # Figure 2: sky(P1) collects the two worlds with s < t (1/4 each)
        dataset, preferences = observation
        mass = 0.0
        for world, probability in enumerate_worlds(preferences, dataset):
            if world[(0, "s", "t")]:
                mass += probability
        assert mass == pytest.approx(0.5)
