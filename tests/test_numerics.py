"""Numerical-robustness tests: extreme probabilities and heavy cancellation."""

from __future__ import annotations

import pytest

from repro.core.engine import SkylineProbabilityEngine
from repro.core.exact import skyline_probability_det
from repro.core.naive import skyline_probability_naive
from repro.core.objects import Dataset
from repro.core.preferences import PreferenceModel
from repro.core.sampling import skyline_probability_sampled


class TestExtremeProbabilities:
    def test_tiny_preference_probabilities(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 1e-300)
        result = skyline_probability_det(model, [("a",)], ("o",))
        assert result.probability == pytest.approx(1.0)

    def test_near_one_preferences(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 1.0 - 1e-12)
        result = skyline_probability_det(model, [("a",)], ("o",))
        assert result.probability == pytest.approx(1e-12, rel=1e-3)

    def test_product_underflow_is_graceful(self):
        # 600 independent dominators at p=0.5: sky = 2^-600, denormal-ish
        model = PreferenceModel(1)
        competitors = []
        for i in range(600):
            model.set_preference(0, f"v{i}", "o", 0.5)
            competitors.append((f"v{i}",))
        sampled = skyline_probability_sampled(
            model, competitors, ("o",), samples=500, seed=1
        )
        assert sampled.estimate == 0.0  # always dominated in practice

    def test_heavy_cancellation_stays_in_unit_interval(self):
        # many overlapping strong dominators: alternating terms are large
        model = PreferenceModel(2)
        values = ["u", "v", "w"]
        for value in values:
            model.set_preference(0, value, "o0", 0.99)
            model.set_preference(1, value, "o1", 0.99)
        competitors = [
            (a, b) for a in values for b in values
        ]
        result = skyline_probability_det(model, competitors, ("o0", "o1"))
        naive = skyline_probability_naive(model, competitors, ("o0", "o1"))
        assert 0.0 <= result.probability <= 1.0
        assert result.probability == pytest.approx(naive, abs=1e-12)

    def test_mixed_scales(self):
        model = PreferenceModel(1)
        model.set_preference(0, "tiny", "o", 1e-9)
        model.set_preference(0, "huge", "o", 1.0 - 1e-9)
        result = skyline_probability_det(
            model, [("tiny",), ("huge",)], ("o",)
        )
        expected = (1 - 1e-9) * 1e-9  # survive the huge, dodge the tiny
        assert result.probability == pytest.approx(expected, rel=1e-6)


class TestScaleStress:
    def test_many_identical_probability_competitors(self):
        # n disjoint p=0.5 dominators: sky = 0.5^n exactly
        model = PreferenceModel(1)
        competitors = []
        for i in range(50):
            model.set_preference(0, f"v{i}", "o", 0.5)
            competitors.append((f"v{i}",))
        dataset = Dataset([("o",)] + competitors)
        engine = SkylineProbabilityEngine(dataset, model)
        report = engine.skyline_probability(0, method="det+")
        assert report.probability == pytest.approx(0.5**50, rel=1e-9)

    def test_deep_absorption_chain(self):
        # v0 ⊂ v0v1 ⊂ v0v1v2 ⊂ ...: everything absorbed into one object
        d = 12
        model = PreferenceModel(d)
        target = tuple(f"o{j}" for j in range(d))
        competitors = []
        for depth in range(1, d + 1):
            competitor = tuple(
                f"x{j}" if j < depth else f"o{j}" for j in range(d)
            )
            competitors.append(competitor)
        for j in range(d):
            model.set_preference(j, f"x{j}", f"o{j}", 0.5)
        dataset = Dataset([target] + competitors)
        engine = SkylineProbabilityEngine(dataset, model)
        report = engine.skyline_probability(0, method="det+")
        assert report.preprocessing.kept_count == 1
        assert report.probability == pytest.approx(0.5)

    def test_wide_dimensionality(self):
        d = 40
        model = PreferenceModel(d)
        target = tuple(f"o{j}" for j in range(d))
        competitor = tuple(f"x{j}" for j in range(d))
        for j in range(d):
            model.set_preference(j, f"x{j}", f"o{j}", 0.9)
        result = skyline_probability_det(model, [competitor], target)
        assert result.probability == pytest.approx(1.0 - 0.9**40)
