"""Numerics contract of the ``vec`` kernel, pinned explicitly.

The vec kernel (:mod:`repro.core.exact_vec`) evaluates the same
inclusion-exclusion sum as the recursive kernels but in a different —
equally valid — order: NumPy's pairwise summation over the dense subset
array instead of the DFS accumulation, and per-level factor grouping
instead of per-term chains.  This module makes the resulting equality
contract explicit rather than accidental:

**Bit-identical** (exact float equality is guaranteed):

* duplicate targets — every kernel returns exactly ``0.0``;
* empty partitions (all competitors filtered) — exactly ``1.0``;
* singleton partitions (n = 1) — the whole computation is one
  multiplication chain over the object's factors in list order followed
  by ``1.0 - p``; vec performs the identical IEEE operation sequence;
* determinism — vec twice on the same input is bit-identical (the
  evaluation order is fixed; no threading, no hashing).

**Tolerance-only** (n ≥ 2): the summation order differs, so results
agree within 1e-12 — *relative* in the common case, falling back to
*absolute* when inclusion-exclusion cancellation leaves ``sky`` orders
of magnitude below the summed terms (there the relative error of every
summation order is amplified by the condition number ``Σ|t| / |Σt|``,
so no kernel's answer is privileged).  Observed deviations are ~1e-15
relative; 1e-12 is the documented safety margin.

Integer provenance (``terms_evaluated``, ``objects_used``) is exactly
equal in *all* cases — pruning decisions compare against exact zeros,
which summation order cannot perturb.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.exact import skyline_probability_det
from repro.core.preferences import PreferenceModel
from repro.data.blockzipf import block_zipf_dataset
from repro.data.examples import running_example
from repro.data.procedural import HashedPreferenceModel
from repro.data.uniform import uniform_dataset

from strategies import shared_value_instance, uncertain_instance

TOLERANCE = 1e-12


def _kernel(preferences, competitors, target, kernel, **options):
    return skyline_probability_det(
        preferences, competitors, target, kernel=kernel, **options
    )


class TestBitIdenticalClasses:
    def test_duplicate_target_exact_zero(self):
        dataset, preferences = running_example()
        result = _kernel(preferences, [dataset[0]], dataset[0], "vec")
        assert result.probability == 0.0
        assert (result.terms_evaluated, result.objects_used) == (0, 0)

    def test_empty_partition_exact_one(self):
        preferences = PreferenceModel(1)
        preferences.set_preference(0, "a", "o", 0.0)
        result = _kernel(preferences, [("a",)], ("o",), "vec")
        assert result.probability == 1.0
        assert result.terms_evaluated == 0

    def test_no_competitors_exact_one(self):
        preferences = PreferenceModel(1)
        result = _kernel(preferences, [], ("o",), "vec")
        assert result.probability == 1.0
        assert (result.terms_evaluated, result.objects_used) == (0, 0)

    @pytest.mark.parametrize(
        "factors", [(0.3,), (0.3, 0.7), (0.125, 0.5, 0.875)]
    )
    def test_singleton_partition_bit_identical(self, factors):
        # n = 1: both kernels multiply the factors in list order and
        # compute 1.0 - product — the identical IEEE operation sequence
        d = len(factors)
        preferences = PreferenceModel(d)
        competitor = []
        for j, probability in enumerate(factors):
            preferences.set_preference(j, f"x{j}", f"o{j}", probability)
            competitor.append(f"x{j}")
        target = tuple(f"o{j}" for j in range(d))
        vec = _kernel(preferences, [tuple(competitor)], target, "vec")
        reference = _kernel(
            preferences, [tuple(competitor)], target, "reference"
        )
        assert vec == reference  # full dataclass equality, bitwise floats

    @given(uncertain_instance())
    @settings(max_examples=30, deadline=None)
    def test_vec_is_deterministic(self, instance):
        preferences, competitors, target = instance
        first = _kernel(preferences, competitors, target, "vec")
        second = _kernel(preferences, competitors, target, "vec")
        assert first == second


class TestToleranceClasses:
    @given(shared_value_instance())
    @settings(max_examples=40, deadline=None)
    def test_general_spaces_within_tolerance(self, instance):
        preferences, competitors, target = instance
        vec = _kernel(preferences, competitors, target, "vec")
        reference = _kernel(preferences, competitors, target, "reference")
        assert vec.probability == pytest.approx(
            reference.probability, rel=TOLERANCE, abs=TOLERANCE
        )
        # integer provenance is exempt from any tolerance
        assert vec.terms_evaluated == reference.terms_evaluated
        assert vec.objects_used == reference.objects_used

    def test_large_shared_instance_within_tolerance(self):
        # a 16-dominator uniform instance: 65535 terms, heavy key
        # sharing, deep cancellation — the worst case for summation-order
        # divergence that is still fast enough for the tier-1 suite
        dataset = uniform_dataset(17, 5, seed=301)
        preferences = HashedPreferenceModel(5, seed=302)
        competitors, target = list(dataset.others(0)), dataset[0]
        vec = _kernel(preferences, competitors, target, "vec")
        reference = _kernel(preferences, competitors, target, "reference")
        assert vec.objects_used == 16
        assert vec.terms_evaluated == reference.terms_evaluated
        assert vec.probability == pytest.approx(
            reference.probability, rel=TOLERANCE, abs=TOLERANCE
        )

    def test_blockzipf_partitions_within_tolerance(self):
        from repro.core.engine import SkylineProbabilityEngine

        dataset = block_zipf_dataset(60, 4, seed=71)
        preferences = HashedPreferenceModel(4, seed=72)
        engine = SkylineProbabilityEngine(dataset, preferences)
        for index in range(0, 60, 7):
            prep = engine.skyline_probability(
                index, method="det+"
            ).preprocessing
            competitors, target = list(dataset.others(index)), dataset[index]
            for part in prep.partitions:
                group = [competitors[i] for i in part]
                vec = _kernel(preferences, group, target, "vec")
                reference = _kernel(preferences, group, target, "reference")
                assert vec.terms_evaluated == reference.terms_evaluated
                assert vec.probability == pytest.approx(
                    reference.probability, rel=TOLERANCE, abs=TOLERANCE
                )

    def test_cancellation_dominated_instance_absolute_only(self):
        # near-certain dominators drive sky towards 0: the summed terms
        # are O(1) while the result is ~1e-5, so only the absolute arm
        # of the contract is meaningful — this documents *why* the
        # contract is rel-or-abs instead of purely relative
        d = 3
        preferences = PreferenceModel(d)
        competitors = []
        for i in range(10):
            values = []
            for j in range(d):
                value = f"q{i}_{j}"
                preferences.set_preference(j, value, f"o{j}", 0.9)
                values.append(value)
            competitors.append(tuple(values))
        target = tuple(f"o{j}" for j in range(d))
        vec = _kernel(preferences, competitors, target, "vec")
        reference = _kernel(preferences, competitors, target, "reference")
        assert reference.probability < 1e-4  # cancellation really occurs
        assert vec.probability == pytest.approx(
            reference.probability, rel=TOLERANCE, abs=TOLERANCE
        )

    def test_underflow_pruning_is_order_independent(self):
        # exact zeros (underflow) prune identically in every kernel:
        # pruning compares against 0.0, which no reordering can perturb
        preferences = PreferenceModel(1)
        for value in ("a", "b", "c", "d"):
            preferences.set_preference(0, value, "o", 1e-200)
        competitors = [("a",), ("b",), ("c",), ("d",)]
        vec = _kernel(preferences, competitors, ("o",), "vec")
        reference = _kernel(preferences, competitors, ("o",), "reference")
        assert vec.terms_evaluated == reference.terms_evaluated
        assert vec.probability == reference.probability == 1.0
