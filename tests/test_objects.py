"""Unit tests for the Dataset / object model."""

from __future__ import annotations

import pytest

from repro.core.objects import Dataset, as_object
from repro.errors import (
    DatasetError,
    DimensionalityError,
    DuplicateObjectError,
)


class TestAsObject:
    def test_tuple_passthrough(self):
        assert as_object(("a", "b")) == ("a", "b")

    def test_list_converted(self):
        assert as_object(["a", 1]) == ("a", 1)

    def test_string_rejected(self):
        with pytest.raises(DatasetError):
            as_object("abc")

    def test_bytes_rejected(self):
        with pytest.raises(DatasetError):
            as_object(b"ab")


class TestConstruction:
    def test_basic(self):
        dataset = Dataset([("a", "x"), ("b", "y")])
        assert dataset.cardinality == 2
        assert dataset.dimensionality == 2

    def test_default_labels_follow_paper(self):
        dataset = Dataset([("a",), ("b",), ("c",)])
        assert dataset.labels == ("Q1", "Q2", "Q3")

    def test_custom_labels(self):
        dataset = Dataset([("a",), ("b",)], labels=["O", "Q1"])
        assert dataset.label_of(0) == "O"

    def test_label_count_mismatch(self):
        with pytest.raises(DatasetError):
            Dataset([("a",)], labels=["x", "y"])

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            Dataset([])

    def test_zero_dimensional_rejected(self):
        with pytest.raises(DimensionalityError):
            Dataset([()])

    def test_ragged_rejected(self):
        with pytest.raises(DimensionalityError):
            Dataset([("a", "b"), ("c",)])

    def test_duplicates_rejected_by_default(self):
        with pytest.raises(DuplicateObjectError):
            Dataset([("a", "b"), ("a", "b")])

    def test_duplicates_allowed_explicitly(self):
        dataset = Dataset([("a",), ("a",)], allow_duplicates=True)
        assert dataset.cardinality == 2

    def test_mixed_value_types(self):
        dataset = Dataset([(1, "x"), (2, "y")])
        assert dataset[0] == (1, "x")


class TestAccess:
    def test_iteration_and_indexing(self):
        objects = [("a", "x"), ("b", "y"), ("c", "z")]
        dataset = Dataset(objects)
        assert list(dataset) == [("a", "x"), ("b", "y"), ("c", "z")]
        assert dataset[1] == ("b", "y")

    def test_contains(self):
        dataset = Dataset([("a", "x")])
        assert ("a", "x") in dataset
        assert ["a", "x"] in dataset  # list form normalised
        assert ("z", "z") not in dataset
        assert "ax" not in dataset  # scalar-like never matches

    def test_index_of(self):
        dataset = Dataset([("a",), ("b",)])
        assert dataset.index_of(["b"]) == 1
        with pytest.raises(ValueError):
            dataset.index_of(("zz",))

    def test_values_on(self):
        dataset = Dataset([("a", "x"), ("b", "x")])
        assert dataset.values_on(0) == {"a", "b"}
        assert dataset.values_on(1) == {"x"}

    def test_values_on_bad_dimension(self):
        dataset = Dataset([("a",)])
        with pytest.raises(DimensionalityError):
            dataset.values_on(1)

    def test_values_by_dimension(self):
        dataset = Dataset([("a", "x"), ("b", "y")])
        assert dataset.values_by_dimension() == [{"a", "b"}, {"x", "y"}]

    def test_others_excludes_target(self):
        dataset = Dataset([("a",), ("b",), ("c",)])
        assert dataset.others(1) == [("a",), ("c",)]

    def test_others_bad_index(self):
        dataset = Dataset([("a",)])
        with pytest.raises(DatasetError):
            dataset.others(5)

    def test_equality_and_hash(self):
        a = Dataset([("a",), ("b",)])
        b = Dataset([("a",), ("b",)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Dataset([("a",), ("c",)])

    def test_repr_mentions_shape(self):
        dataset = Dataset([("a", "x")])
        assert "n=1" in repr(dataset)
        assert "d=2" in repr(dataset)


class TestTransforms:
    def test_project_dedupes(self):
        dataset = Dataset([("a", "x"), ("a", "y"), ("b", "x")])
        projected = dataset.project([0])
        assert projected.cardinality == 2
        assert list(projected) == [("a",), ("b",)]

    def test_project_reorders_dimensions(self):
        dataset = Dataset([("a", "x")])
        assert dataset.project([1, 0])[0] == ("x", "a")

    def test_project_empty_rejected(self):
        with pytest.raises(DimensionalityError):
            Dataset([("a", "x")]).project([])

    def test_project_bad_dimension(self):
        with pytest.raises(DimensionalityError):
            Dataset([("a", "x")]).project([5])

    def test_deduplicated_keeps_first_label(self):
        dataset = Dataset(
            [("a",), ("a",), ("b",)],
            labels=["first", "second", "third"],
            allow_duplicates=True,
        )
        deduped = dataset.deduplicated()
        assert deduped.cardinality == 2
        assert deduped.labels == ("first", "third")

    def test_sample_is_subset(self):
        dataset = Dataset([(i,) for i in range(20)])
        sampled = dataset.sample(5, seed=1)
        assert sampled.cardinality == 5
        assert all(obj in dataset for obj in sampled)

    def test_sample_deterministic(self):
        dataset = Dataset([(i,) for i in range(20)])
        assert dataset.sample(5, seed=2) == dataset.sample(5, seed=2)

    def test_sample_bad_size(self):
        dataset = Dataset([("a",)])
        with pytest.raises(DatasetError):
            dataset.sample(2)
        with pytest.raises(DatasetError):
            dataset.sample(0)

    def test_with_labels(self):
        dataset = Dataset([("a",)]).with_labels(["renamed"])
        assert dataset.labels == ("renamed",)


class TestSerialization:
    def test_round_trip_dict(self):
        dataset = Dataset([("a", "x"), ("b", "y")], labels=["u", "v"])
        assert Dataset.from_dict(dataset.to_dict()) == dataset

    def test_round_trip_json(self):
        dataset = Dataset([("a", 1), ("b", 2)])
        restored = Dataset.from_json(dataset.to_json())
        assert restored == dataset

    def test_malformed_payload(self):
        with pytest.raises(DatasetError):
            Dataset.from_dict({"nope": 1})

    def test_dimensionality_mismatch_detected(self):
        payload = Dataset([("a", "x")]).to_dict()
        payload["dimensionality"] = 7
        with pytest.raises(DimensionalityError):
            Dataset.from_dict(payload)
