"""Tests for the ``repro.obs`` instrumentation subsystem.

Three contracts are pinned here:

* the metric primitives (counter/gauge/histogram/registry) and their two
  export views (JSON dict, Prometheus text exposition);
* the enable/disable switch: disabled by default, ``stats=None`` on every
  report, nothing written to the registry;
* provenance consistency: a :class:`~repro.obs.QueryStats` /
  :class:`~repro.obs.BatchStats` record is an aggregated *view* of the
  counters the sub-results already carry, so the two must always agree.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.__main__ import main
from repro.core.batch import batch_skyline_probabilities
from repro.core.dominance import DominanceCache
from repro.core.engine import SkylineProbabilityEngine
from repro.core.objects import Dataset
from repro.core.preferences import PreferenceModel
from repro.data.examples import running_example
from repro.errors import ReproError
from repro.io import save_dataset, save_preferences
from repro.obs import BatchStats, Counter, Gauge, Histogram, StatsRegistry


def _nothing_recorded() -> bool:
    # Metric objects survive a reset() by design (so long-lived handles
    # stay valid), so "the registry is untouched" means every series is
    # empty — not that the registry dict is literally {}.
    return all(
        metric["series"] == [] for metric in obs.registry().to_dict().values()
    )


@pytest.fixture(autouse=True)
def _pristine_switch():
    """Every test starts and ends with instrumentation off and zeroed."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def engine(running):
    dataset, preferences = running
    return SkylineProbabilityEngine(dataset, preferences)


class TestRegistryPrimitives:
    def test_counter_accumulates_per_label_set(self):
        counter = Counter("repro_test_total", "help")
        counter.inc()
        counter.inc(2.0, method="det")
        counter.inc(3.0, method="det")
        assert counter.value() == 1.0
        assert counter.value(method="det") == 5.0
        assert counter.total() == 6.0

    def test_counter_rejects_decrease(self):
        with pytest.raises(ReproError, match="cannot decrease"):
            Counter("repro_test_total").inc(-1.0)

    def test_gauge_sets_and_moves(self):
        gauge = Gauge("repro_test_gauge")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value() == 2.5

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram("repro_test_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(6.05)
        assert snapshot["buckets"]["0.1"] == 1
        assert snapshot["buckets"]["1.0"] == 3
        assert snapshot["buckets"]["+Inf"] == 4

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ReproError, match="ascending"):
            Histogram("repro_test_seconds", buckets=(1.0, 0.1))

    def test_invalid_metric_and_label_names_rejected(self):
        with pytest.raises(ReproError, match="invalid metric name"):
            Counter("bad name")
        with pytest.raises(ReproError, match="label name"):
            Counter("repro_test_total").inc(**{"bad-label": "x"})

    def test_registry_get_or_create_returns_same_object(self):
        registry = StatsRegistry()
        first = registry.counter("repro_test_total", "help")
        second = registry.counter("repro_test_total")
        assert first is second

    def test_registry_rejects_kind_conflict(self):
        registry = StatsRegistry()
        registry.counter("repro_test_metric")
        with pytest.raises(ReproError, match="is a counter"):
            registry.gauge("repro_test_metric")

    def test_reset_zeroes_values_but_keeps_objects(self):
        registry = StatsRegistry()
        counter = registry.counter("repro_test_total")
        counter.inc(7.0)
        registry.reset()
        assert counter.value() == 0.0
        assert registry.counter("repro_test_total") is counter

    def test_prometheus_exposition_format(self):
        registry = StatsRegistry()
        registry.counter("repro_test_total", "A test counter.").inc(
            2.0, method="det"
        )
        registry.histogram(
            "repro_test_seconds", buckets=(0.5,)
        ).observe(0.25, stage="exact")
        text = registry.to_prometheus()
        assert "# HELP repro_test_total A test counter." in text
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{method="det"} 2' in text
        assert 'repro_test_seconds_bucket{stage="exact",le="0.5"} 1' in text
        assert 'repro_test_seconds_bucket{stage="exact",le="+Inf"} 1' in text
        assert 'repro_test_seconds_count{stage="exact"} 1' in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = StatsRegistry()
        registry.counter("repro_test_total").inc(reason='say "hi"\n')
        assert r'reason="say \"hi\"\n"' in registry.to_prometheus()

    def test_to_dict_round_trips_through_json(self):
        registry = StatsRegistry()
        registry.counter("repro_test_total").inc(method="det")
        registry.histogram("repro_test_seconds").observe(0.1)
        payload = json.loads(json.dumps(registry.to_dict()))
        assert payload["repro_test_total"]["type"] == "counter"
        assert payload["repro_test_seconds"]["series"][0]["count"] == 1


class TestSwitch:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_enabled_context_restores_previous_state(self):
        with obs.enabled() as registry:
            assert obs.is_enabled()
            assert registry is obs.registry()
            with obs.enabled(False):
                assert not obs.is_enabled()
            assert obs.is_enabled()
        assert not obs.is_enabled()

    def test_disabled_stage_is_shared_noop(self):
        first, second = obs.stage("exact"), obs.stage("sampling")
        assert first is second  # one shared object, no allocation
        with first:
            pass
        assert _nothing_recorded()

    def test_disabled_count_writes_nothing(self):
        obs.count("repro_test_total", method="det")
        assert _nothing_recorded()

    def test_reports_carry_no_stats_while_disabled(self, engine):
        report = engine.skyline_probability(0, method="det+")
        assert report.stats is None
        result = batch_skyline_probabilities(engine, method="det", workers=1)
        assert result.stats is None
        assert _nothing_recorded()


class TestQueryStatsConsistency:
    def test_stats_mirror_exact_results_and_cache(self, running):
        dataset, preferences = running
        engine = SkylineProbabilityEngine(dataset, preferences)
        cache = DominanceCache(preferences)
        with obs.enabled():
            report = engine.skyline_probability(0, method="det+", cache=cache)
        stats = report.stats
        assert stats.method == "det+" and stats.outcome == "answered"
        assert stats.exact and not stats.degraded
        assert stats.competitors == len(dataset) - 1
        assert stats.terms_evaluated == sum(
            part.terms_evaluated for part in report.partition_results
        )
        assert stats.objects_used == sum(
            part.objects_used for part in report.partition_results
        )
        assert stats.terms_zero_pruned == sum(
            (1 << part.objects_used) - 1 - part.terms_evaluated
            for part in report.partition_results
        )
        prep = report.preprocessing
        assert stats.absorbed == len(prep.absorbed_by)
        assert stats.partitions == len(prep.partitions)
        assert stats.largest_partition == prep.largest_partition
        assert stats.exact_partitions == len(report.partition_results)
        assert stats.sampled_partitions == 0 and stats.samples == 0
        # the cache was fresh, so the query's deltas are its totals
        assert stats.cache_hits == cache.hits
        assert stats.cache_misses == cache.misses
        assert stats.wall_seconds > 0.0
        stages = dict(stats.stage_seconds)
        assert set(stages) >= {"query", "preprocess", "exact"}
        assert stages["query"] >= stages["exact"]

    def test_sampling_stats_mirror_sampling_results(self, engine):
        with obs.enabled():
            report = engine.skyline_probability(
                0, method="sam", samples=300, seed=5
            )
        stats = report.stats
        assert stats.samples == report.samples == 300
        assert stats.sampler_checks == report.partition_results[0].checks
        assert stats.sampled_partitions == 1
        assert stats.terms_evaluated == 0

    def test_duplicate_target_outcome(self, running):
        dataset, preferences = running
        engine = SkylineProbabilityEngine(dataset, preferences)
        with obs.enabled() as registry:
            report = engine.skyline_probability(dataset[0], method="det")
            stats = report.stats
            assert stats.outcome == "duplicate_target"
            assert stats.duplicate_target
            assert stats.terms_evaluated == 0 and stats.samples == 0
            counter = registry.counter("repro_duplicate_targets_total")
            assert counter.total() == 1.0
            queries = registry.counter("repro_queries_total")
            assert queries.value(method="det", outcome="duplicate_target") == 1.0

    def test_degraded_outcome(self, engine):
        with obs.enabled() as registry:
            report = engine.skyline_probability(
                0, method="det", deadline=1e-9, samples=120, seed=9
            )
            assert report.degraded
            assert report.stats.outcome == "degraded"
            assert report.stats.degraded
            assert registry.counter("repro_degraded_total").total() == 1.0
            queries = registry.counter("repro_queries_total")
            # labelled by the method actually used (sam), like stats.method
            assert queries.value(method="sam", outcome="degraded") == 1.0

    def test_memoised_outcome_counts_without_recomputing(self, engine):
        with obs.enabled() as registry:
            first = engine.skyline_probability(0, method="det")
            second = engine.skyline_probability(0, method="det")
            assert second is first
            queries = registry.counter("repro_queries_total")
            assert queries.value(method="det", outcome="answered") == 1.0
            assert queries.value(method="det", outcome="memoised") == 1.0

    def test_registry_counters_match_report_provenance(self, engine):
        with obs.enabled() as registry:
            registry.reset()
            report = engine.skyline_probability(0, method="det")
            result = report.partition_results[0]
            counters = registry.to_dict()
            assert counters["repro_exact_runs_total"]["series"][0][
                "value"
            ] == 1.0
            assert counters["repro_ie_terms_evaluated_total"]["series"][0][
                "value"
            ] == result.terms_evaluated
            pruned = (1 << result.objects_used) - 1 - result.terms_evaluated
            assert counters["repro_ie_terms_zero_pruned_total"]["series"][0][
                "value"
            ] == pruned


class TestBatchStats:
    def test_batch_stats_mirror_reports(self, running):
        dataset, preferences = running
        engine = SkylineProbabilityEngine(dataset, preferences)
        with obs.enabled() as registry:
            result = batch_skyline_probabilities(
                engine, method="det+", workers=1
            )
        stats = result.stats
        assert isinstance(stats, BatchStats)
        assert stats.queries == len(dataset)
        assert stats.answered == len(result.reports)
        assert stats.failed == 0 and stats.retries == result.retries
        assert stats.exact_answers == len(dataset)
        assert stats.cache_hits == result.cache_hits
        assert stats.cache_misses == result.cache_misses
        assert stats.terms_evaluated == sum(
            part.terms_evaluated
            for report in result.reports
            for part in report.partition_results
        )
        assert stats.partitions == sum(
            len(report.preprocessing.partitions) for report in result.reports
        )
        assert stats.wall_seconds > 0.0
        assert dict(stats.stage_seconds).get("query", 0.0) > 0.0
        batches = registry.counter("repro_batches_total")
        assert batches.total() == 1.0
        queries = registry.counter("repro_batch_queries_total")
        assert queries.total() == len(dataset)

    def test_batch_stats_survive_process_pool(self, running):
        dataset, preferences = running
        engine = SkylineProbabilityEngine(dataset, preferences)
        with obs.enabled():
            result = batch_skyline_probabilities(
                engine, method="det", workers=2, chunk_size=1
            )
        stats = result.stats
        assert stats.queries == len(dataset)
        assert stats.answered == len(dataset)
        assert stats.terms_evaluated == sum(
            part.terms_evaluated
            for report in result.reports
            for part in report.partition_results
        )
        for report in result.reports:
            assert report.stats is not None

    def test_from_reports_aggregates_special_outcomes(self):
        dataset = Dataset([("a",), ("b",)])
        engine = SkylineProbabilityEngine(dataset, PreferenceModel.equal(1))
        with obs.enabled():
            duplicate = engine.skyline_probability(("a",), method="det")
            degraded = engine.skyline_probability(
                0, method="det", deadline=1e-9, samples=60, seed=2
            )
            answered = engine.skyline_probability(1, method="det")
        stats = BatchStats.from_reports(
            [duplicate, degraded, answered], queries=3
        )
        assert stats.duplicate_targets == 1
        assert stats.degraded == 1
        assert stats.exact_answers == 2  # duplicate answers are exact
        assert stats.samples == degraded.samples
        assert dict(stats.stage_seconds)["query"] > 0.0


class TestStatsCli:
    @pytest.fixture
    def inputs(self, tmp_path):
        dataset, preferences = running_example()
        dataset_path = tmp_path / "data.json"
        preferences_path = tmp_path / "prefs.json"
        save_dataset(dataset, dataset_path)
        save_preferences(preferences, preferences_path)
        return str(dataset_path), str(preferences_path)

    def test_single_query_record(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        code = main(
            [
                "stats", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "--target", "0", "--method", "det+", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["probability"] == pytest.approx(0.1875)
        assert payload["stats"]["method"] == "det+"
        assert payload["stats"]["outcome"] == "answered"
        assert payload["stats"]["terms_evaluated"] >= 1
        assert "repro_queries_total" in payload["registry"]

    def test_batch_record(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        code = main(
            [
                "stats", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "--method", "det", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["queries"] == 5
        assert payload["stats"]["answered"] == 5
        assert len(payload["probability"]) == 5

    def test_prometheus_exposition(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        code = main(
            [
                "stats", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "--target", "0", "--prometheus",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        assert "repro_stage_seconds_bucket" in out

    def test_cli_leaves_instrumentation_off(self, inputs, capsys):
        dataset_path, preferences_path = inputs
        main(
            [
                "stats", "--dataset", dataset_path,
                "--preferences", preferences_path,
                "--target", "0",
            ]
        )
        capsys.readouterr()
        assert not obs.is_enabled()
