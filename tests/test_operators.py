"""Unit tests for the confidence-aware threshold operator."""

from __future__ import annotations

import pytest

from repro.core.engine import SkylineProbabilityEngine
from repro.core.operators import (
    ThresholdDecision,
    classify_against_threshold,
)
from repro.data.blockzipf import block_zipf_dataset
from repro.data.procedural import HashedPreferenceModel
from repro.errors import ReproError


class TestExactClassification:
    def test_matches_plain_threshold(self, observation):
        dataset, preferences = observation
        engine = SkylineProbabilityEngine(dataset, preferences)
        classification = classify_against_threshold(
            engine, 0.5, method="det"
        )
        assert classification.members == [0, 2]
        assert classification.excluded == [1]
        assert classification.undecided == []

    def test_probabilities_recorded(self, observation):
        dataset, preferences = observation
        engine = SkylineProbabilityEngine(dataset, preferences)
        classification = classify_against_threshold(engine, 0.4, method="det")
        assert classification.probabilities == pytest.approx((0.5, 0.25, 0.5))
        assert classification.tau == 0.4

    def test_no_uncertainty_with_exact_methods(self, running):
        dataset, preferences = running
        engine = SkylineProbabilityEngine(dataset, preferences)
        classification = classify_against_threshold(
            engine, 0.1875, method="det+"
        )
        assert classification.undecided == []
        # threshold is inclusive: sky(O) == tau -> IN
        assert 0 in classification.members

    def test_invalid_tau(self, observation):
        dataset, preferences = observation
        engine = SkylineProbabilityEngine(dataset, preferences)
        with pytest.raises(ReproError):
            classify_against_threshold(engine, 0.0)


class TestSampledClassification:
    @pytest.fixture
    def engine(self, running):
        dataset, preferences = running
        return SkylineProbabilityEngine(dataset, preferences)

    def test_clear_cases_decided(self, engine):
        # sky values: O=3/16, Q1..Q3=3/16, Q4=7/16; tau=0.9 is far away
        classification = classify_against_threshold(
            engine, 0.9, method="sam", samples=3000, seed=1
        )
        assert classification.members == []
        assert classification.undecided == []
        assert len(classification.excluded) == 5

    def test_borderline_is_uncertain(self, engine):
        # tau right at sky(O) with few samples: the CI must straddle it
        classification = classify_against_threshold(
            engine, 0.1875, method="sam", samples=200, seed=2
        )
        assert 0 in classification.undecided

    def test_more_samples_shrink_uncertainty(self, engine):
        few = classify_against_threshold(
            engine, 0.3, method="sam", samples=100, seed=3
        )
        many = classify_against_threshold(
            engine, 0.3, method="sam", samples=50000, seed=3
        )
        assert len(many.undecided) <= len(few.undecided)

    def test_decisions_respect_true_values(self, engine):
        # with generous samples, no decided verdict may be wrong
        truth = engine.skyline_probabilities(method="det")
        classification = classify_against_threshold(
            engine, 0.3, method="sam", samples=50000, seed=4
        )
        for index, decision in enumerate(classification.decisions):
            if decision is ThresholdDecision.IN:
                assert truth[index] >= 0.3
            elif decision is ThresholdDecision.OUT:
                assert truth[index] < 0.3


class TestBlockZipfClassification:
    def test_auto_mixes_exact_and_sampled(self):
        dataset = block_zipf_dataset(40, 3, seed=5)
        engine = SkylineProbabilityEngine(
            dataset, HashedPreferenceModel(3, seed=6), max_exact_objects=6
        )
        classification = classify_against_threshold(
            engine, 0.2, method="auto", samples=3000, seed=7
        )
        assert len(classification.decisions) == 40
        counted = (
            len(classification.members)
            + len(classification.excluded)
            + len(classification.undecided)
        )
        assert counted == 40
