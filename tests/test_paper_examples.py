"""Integration tests: every number the paper states, end to end.

These are the reproduction oracles — each assertion is a value printed in
the paper's text, checked against the library's public API.
"""

from __future__ import annotations

import pytest

from repro.core.baselines import skyline_probability_sac
from repro.core.dominance import dominance_probability, joint_dominance_probability
from repro.core.engine import SkylineProbabilityEngine
from repro.core.exact import inclusion_exclusion_layer_sums
from repro.core.preprocess import preprocess
from repro.data.examples import (
    OBSERVATION_SAC_PROBABILITIES,
    OBSERVATION_SKYLINE_PROBABILITIES,
    RUNNING_EXAMPLE_LAYER_SUMS,
    RUNNING_EXAMPLE_SAC_O,
    RUNNING_EXAMPLE_SKY_O,
)


class TestObservationExample:
    """Section 1, Figures 1-2."""

    def test_dominance_probabilities(self, observation):
        dataset, preferences = observation
        p1, p2, p3 = dataset
        # "the probability of P2 dominating P1 is 1/2"
        assert dominance_probability(preferences, p2, p1) == pytest.approx(0.5)
        # "Similarly we have Pr(P3 < P1) = 1/4"
        assert dominance_probability(preferences, p3, p1) == pytest.approx(0.25)

    def test_sac_computes_three_eighths_for_p1(self, observation):
        dataset, preferences = observation
        # "by assuming independent object dominance ... sky(P1) = 3/8"
        assert skyline_probability_sac(
            preferences, dataset.others(0), dataset[0]
        ) == pytest.approx(3 / 8)

    def test_true_skyline_probability_is_one_half(self, observation):
        dataset, preferences = observation
        engine = SkylineProbabilityEngine(dataset, preferences)
        # "sky(P1) = 1/4 + 1/4 = 1/2"
        assert engine.skyline_probability(0, method="det").probability == (
            pytest.approx(0.5)
        )

    def test_sac_correct_only_for_p2(self, observation):
        # "for three objects in this example Sac can only correctly
        #  compute sky(P2)"
        dataset, preferences = observation
        engine = SkylineProbabilityEngine(dataset, preferences)
        for index in range(3):
            exact = engine.skyline_probability(index, method="det").probability
            sac = skyline_probability_sac(
                preferences, dataset.others(index), dataset[index]
            )
            assert exact == pytest.approx(OBSERVATION_SKYLINE_PROBABILITIES[index])
            assert sac == pytest.approx(OBSERVATION_SAC_PROBABILITIES[index])
            if index == 1:
                assert sac == pytest.approx(exact)
            else:
                assert sac != pytest.approx(exact)

    def test_p1_p3_share_no_values_p2_p3_share_one(self, observation):
        dataset, _ = observation
        p1, p2, p3 = dataset
        assert not set(p1) & set(p3)
        assert set(p2) & set(p3)


class TestRunningExample:
    """Section 2-3, Figures 4, 5 and 7."""

    def test_joint_probability_of_first_three_events(self, running):
        dataset, preferences = running
        # "Pr(e1 ∩ e2 ∩ e3) = (1/2)^2 x (1/2)^2 = 1/16"
        assert joint_dominance_probability(
            preferences, [dataset[1], dataset[2], dataset[3]], dataset[0]
        ) == pytest.approx(1 / 16)

    def test_sharing_computation_step(self, running):
        dataset, preferences = running
        # "if given Pr(e1 ∩ e2) = 1/4, we can compute
        #  Pr(e1 ∩ e2 ∩ e3) = Pr(e1 ∩ e2) * 1/2 * 1/2 = 1/16"
        joint_12 = joint_dominance_probability(
            preferences, [dataset[1], dataset[2]], dataset[0]
        )
        assert joint_12 == pytest.approx(1 / 4)
        assert joint_12 * 0.5 * 0.5 == pytest.approx(1 / 16)

    def test_equation_4_expansion(self, running):
        dataset, preferences = running
        # "sky(O) = 1 - 3/2 + 17/16 - 7/16 + 1/16 = 3/16"
        sums = inclusion_exclusion_layer_sums(
            preferences, list(dataset.others(0)), dataset[0], 4
        )
        assert sums == pytest.approx(list(RUNNING_EXAMPLE_LAYER_SUMS))
        expansion = 1 - sums[0] + sums[1] - sums[2] + sums[3]
        assert expansion == pytest.approx(RUNNING_EXAMPLE_SKY_O)

    def test_sac_gives_nine_sixty_fourths(self, running):
        dataset, preferences = running
        # "if assuming object dominance independent, we will have an
        #  incorrect result of sky(O), 9/64"
        assert skyline_probability_sac(
            preferences, dataset.others(0), dataset[0]
        ) == pytest.approx(RUNNING_EXAMPLE_SAC_O)

    def test_every_method_agrees_on_sky_o(self, running):
        dataset, preferences = running
        engine = SkylineProbabilityEngine(dataset, preferences)
        for method in ("det", "det+", "naive", "auto"):
            assert engine.skyline_probability(0, method=method).probability == (
                pytest.approx(RUNNING_EXAMPLE_SKY_O)
            )

    def test_section5_absorption_illustration(self, running):
        dataset, preferences = running
        # "to compute sky(O) in our running example, we first discard Q1
        #  through absorption preprocessing"
        prep = preprocess(
            list(dataset.others(0)), dataset[0], preferences=preferences
        )
        assert 0 in prep.absorbed_by  # Q1 is competitor position 0

    def test_section5_partition_illustration(self, running):
        dataset, preferences = running
        # "Then we partition remaining objects into three independent
        #  sets: sky(O) = prod Pr(not e_i) = 3/16"
        prep = preprocess(
            list(dataset.others(0)), dataset[0], preferences=preferences
        )
        assert len(prep.partitions) == 3
        assert prep.largest_partition == 1
        product = 1.0
        for part in prep.partitions:
            competitor = dataset.others(0)[part[0]]
            product *= 1.0 - dominance_probability(
                preferences, competitor, dataset[0]
            )
        assert product == pytest.approx(RUNNING_EXAMPLE_SKY_O)

    def test_q1_dispensable(self, running):
        # "with/without Q1, we always compute same result of sky(O)"
        dataset, preferences = running
        engine = SkylineProbabilityEngine(dataset, preferences)
        with_q1 = engine.skyline_probability(0, method="det").probability
        from repro.core.exact import skyline_probability_det

        without_q1 = skyline_probability_det(
            preferences,
            [dataset[2], dataset[3], dataset[4]],
            dataset[0],
        ).probability
        assert with_q1 == pytest.approx(without_q1)


class TestTheorem1Example:
    """Section 3.1's positive DNF example (Equation 7)."""

    def test_reduction_of_equation_7(self):
        from repro.complexity.dnf import PositiveDNF
        from repro.complexity.reduction import (
            count_models_via_skyline,
            dnf_to_skyline_instance,
        )

        # (x1 ∧ x3) ∨ (x2 ∧ x4) ∨ (x3 ∧ x4) with 4 literals, 3 clauses
        formula = PositiveDNF(4, [(0, 2), (1, 3), (2, 3)])
        instance = dnf_to_skyline_instance(formula)
        assert len(instance.competitors) == 3
        assert count_models_via_skyline(formula) == formula.count_satisfying()
