"""Unit tests for the uncertain-preference model."""

from __future__ import annotations

import pytest

from repro.core.preferences import PreferenceModel, PreferencePair
from repro.errors import (
    DimensionalityError,
    InvalidProbabilityError,
    PreferenceError,
    UnknownPreferenceError,
)


class TestConstruction:
    def test_dimensionality_positive(self):
        with pytest.raises(DimensionalityError):
            PreferenceModel(0)

    def test_default_in_range(self):
        with pytest.raises(InvalidProbabilityError):
            PreferenceModel(2, default=0.6)  # 2 * 0.6 > 1

    def test_default_half_allowed(self):
        model = PreferenceModel(2, default=0.5)
        assert model.prob_prefers(0, "a", "b") == 0.5

    def test_equal_factory(self):
        model = PreferenceModel.equal(3)
        assert model.dimensionality == 3
        assert model.prob_prefers(2, "p", "q") == 0.5

    def test_repr(self):
        assert "pairs=0" in repr(PreferenceModel(2))


class TestSetPreference:
    def test_basic_set_and_get(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "b", 0.7)
        assert model.prob_prefers(0, "a", "b") == 0.7
        assert model.prob_prefers(0, "b", "a") == pytest.approx(0.3)

    def test_explicit_backward(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "b", 0.5, 0.2)
        assert model.prob_prefers(0, "b", "a") == 0.2
        assert model.prob_incomparable(0, "a", "b") == pytest.approx(0.3)

    def test_overwrite(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "b", 0.7)
        model.set_preference(0, "a", "b", 0.1)
        assert model.prob_prefers(0, "a", "b") == 0.1

    def test_identical_values_rejected(self):
        model = PreferenceModel(1)
        with pytest.raises(PreferenceError):
            model.set_preference(0, "a", "a", 0.5)

    def test_probability_out_of_range(self):
        model = PreferenceModel(1)
        with pytest.raises(InvalidProbabilityError):
            model.set_preference(0, "a", "b", 1.5)
        with pytest.raises(InvalidProbabilityError):
            model.set_preference(0, "a", "b", -0.1)

    def test_sum_above_one_rejected(self):
        model = PreferenceModel(1)
        with pytest.raises(InvalidProbabilityError):
            model.set_preference(0, "a", "b", 0.7, 0.7)

    def test_nan_rejected(self):
        model = PreferenceModel(1)
        with pytest.raises(InvalidProbabilityError):
            model.set_preference(0, "a", "b", float("nan"))

    def test_bad_dimension(self):
        model = PreferenceModel(1)
        with pytest.raises(DimensionalityError):
            model.set_preference(3, "a", "b", 0.5)

    def test_update_bulk(self):
        model = PreferenceModel(1)
        model.update(0, {("a", "b"): 0.8, ("c", "d"): 0.4})
        assert model.prob_prefers(0, "a", "b") == 0.8
        assert model.prob_prefers(0, "d", "c") == pytest.approx(0.6)

    def test_update_with_both_orientations(self):
        model = PreferenceModel(1)
        model.update(0, {("a", "b"): 0.5, ("b", "a"): 0.3})
        assert model.prob_incomparable(0, "a", "b") == pytest.approx(0.2)


class TestQueries:
    def test_identical_values(self):
        model = PreferenceModel(1)
        assert model.prob_prefers(0, "a", "a") == 0.0
        assert model.prob_weakly_prefers(0, "a", "a") == 1.0
        assert model.prob_incomparable(0, "a", "a") == 0.0

    def test_weak_equals_strict_for_distinct(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "b", 0.35)
        assert model.prob_weakly_prefers(0, "a", "b") == 0.35

    def test_unknown_pair_raises_without_default(self):
        model = PreferenceModel(1)
        with pytest.raises(UnknownPreferenceError):
            model.prob_prefers(0, "a", "b")

    def test_unknown_pair_error_is_readable(self):
        model = PreferenceModel(1)
        with pytest.raises(UnknownPreferenceError, match="dimension 0"):
            model.prob_prefers(0, "a", "b")

    def test_default_fallback(self):
        model = PreferenceModel(1, default=0.25)
        assert model.prob_prefers(0, "a", "b") == 0.25
        assert model.prob_incomparable(0, "a", "b") == pytest.approx(0.5)

    def test_explicit_beats_default(self):
        model = PreferenceModel(1, default=0.5)
        model.set_preference(0, "a", "b", 0.9)
        assert model.prob_prefers(0, "a", "b") == 0.9

    def test_has_preference(self):
        model = PreferenceModel(1, default=0.5)
        assert not model.has_preference(0, "a", "b")
        model.set_preference(0, "a", "b", 0.5)
        assert model.has_preference(0, "a", "b")
        assert model.has_preference(0, "b", "a")

    def test_pairs_iteration(self):
        model = PreferenceModel(2)
        model.set_preference(0, "a", "b", 0.6)
        model.set_preference(1, "x", "y", 0.1, 0.2)
        pairs0 = list(model.pairs(0))
        assert len(pairs0) == 1
        assert pairs0[0].forward == 0.6
        assert pairs0[0].incomparable == pytest.approx(0.0)
        assert list(model.pairs(1))[0].incomparable == pytest.approx(0.7)

    def test_pair_count(self):
        model = PreferenceModel(2)
        model.set_preference(0, "a", "b", 0.6)
        model.set_preference(1, "x", "y", 0.5)
        assert model.pair_count(0) == 1
        assert model.pair_count() == 2

    def test_is_deterministic(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "b", 1.0)
        assert model.is_deterministic()
        model.set_preference(0, "c", "d", 0.5)
        assert not model.is_deterministic()

    def test_default_makes_model_uncertain(self):
        assert not PreferenceModel(1, default=0.5).is_deterministic()


class TestTransforms:
    def test_copy_is_independent(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "b", 0.4)
        clone = model.copy()
        clone.set_preference(0, "a", "b", 0.9)
        assert model.prob_prefers(0, "a", "b") == 0.4

    def test_restricted_to(self):
        model = PreferenceModel(3)
        model.set_preference(2, "a", "b", 0.8)
        restricted = model.restricted_to([2])
        assert restricted.dimensionality == 1
        assert restricted.prob_prefers(0, "a", "b") == 0.8

    def test_restricted_to_empty_rejected(self):
        with pytest.raises(DimensionalityError):
            PreferenceModel(2).restricted_to([])

    def test_equality(self):
        a = PreferenceModel(1)
        a.set_preference(0, "a", "b", 0.4)
        b = PreferenceModel(1)
        b.set_preference(0, "b", "a", 0.6)  # same pair, other orientation
        assert a == b


class TestSerialization:
    def test_round_trip(self):
        model = PreferenceModel(2, default=0.5)
        model.set_preference(0, "a", "b", 0.3, 0.3)
        restored = PreferenceModel.from_json(model.to_json())
        assert restored == model
        assert restored.prob_incomparable(0, "a", "b") == pytest.approx(0.4)
        assert restored.default == 0.5

    def test_malformed(self):
        with pytest.raises(PreferenceError):
            PreferenceModel.from_dict({"bad": True})


class TestPreferencePair:
    def test_orientation_insensitive_equality(self):
        a = PreferencePair(0, "a", "b", 0.7, 0.2)
        b = PreferencePair(0, "b", "a", 0.2, 0.7)
        assert a == b
        assert hash(a) == hash(b)

    def test_is_deterministic(self):
        assert PreferencePair(0, "a", "b", 1.0, 0.0).is_deterministic
        assert not PreferencePair(0, "a", "b", 0.6, 0.4).is_deterministic

    def test_repr(self):
        assert "dim=0" in repr(PreferencePair(0, "a", "b", 0.5, 0.5))
