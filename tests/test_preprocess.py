"""Unit tests for absorption (Algorithm 3) and partition (Theorem 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.exact import skyline_probability_det
from repro.core.preferences import PreferenceModel
from repro.core.preprocess import (
    absorb,
    drop_never_dominators,
    partition,
    preprocess,
)
from repro.data.examples import running_example
from repro.errors import DatasetError

from strategies import uncertain_instance


@pytest.fixture
def running_parts():
    dataset, preferences = running_example()
    return preferences, list(dataset.others(0)), dataset[0]


class TestAbsorb:
    def test_running_example_absorbs_q1(self, running_parts):
        _, competitors, target = running_parts
        result = absorb(competitors, target)
        # Q1 = (x1, y1) is at position 0 of the competitor list
        assert 0 in result.absorbed_by
        assert result.kept_indices == (1, 2, 3)
        assert result.removed_count == 1

    def test_absorber_is_a_survivor(self, running_parts):
        _, competitors, target = running_parts
        result = absorb(competitors, target)
        for absorber in result.absorbed_by.values():
            assert absorber in result.kept_indices

    def test_theorem3_subset_direction(self):
        # B carries all of A's differing values -> B absorbed, A kept
        target = ("o0", "o1", "o2")
        a = ("v", "o1", "o2")          # differs on dim 0 only
        b = ("v", "w", "o2")           # differs on dims 0 and 1, matches A
        result = absorb([a, b], target)
        assert result.kept_indices == (0,)
        assert result.absorbed_by == {1: 0}

    def test_no_absorption_without_value_match(self):
        target = ("o0", "o1")
        result = absorb([("a", "o1"), ("b", "c")], target)
        assert result.kept_indices == (0, 1)
        assert result.removed_count == 0

    def test_differing_value_must_match_not_just_dimension(self):
        target = ("o0", "o1")
        # both differ on dim 0, but with different values: no absorption
        result = absorb([("a", "o1"), ("b", "o1")], target)
        assert result.kept_indices == (0, 1)

    def test_absorption_chain_resolves_to_survivor(self):
        # Γ(Y) ⊆ Γ(X) ⊆ Γ(Z) with Y positioned after X: X's scan removes
        # Z, then Y's scan removes X.  The raw pass would leave Z mapped
        # to the non-survivor X; the provenance must follow the chain to
        # Y.  (Regression: absorbed_by values pointed at removed
        # competitors.)
        target = ("o0", "o1", "o2")
        x = ("v", "w", "o2")   # Γ(X) = {(0,v), (1,w)}
        z = ("v", "w", "u")    # Γ(Z) = {(0,v), (1,w), (2,u)}
        y = ("v", "o1", "o2")  # Γ(Y) = {(0,v)}
        result = absorb([x, z, y], target)
        assert result.kept_indices == (2,)
        assert result.absorbed_by == {0: 2, 1: 2}

    @given(uncertain_instance())
    @settings(max_examples=60, deadline=None)
    def test_absorbers_always_survive(self, instance):
        # the provenance invariant behind the chain fix, on random spaces
        _, competitors, target = instance
        result = absorb(competitors, target)
        kept = set(result.kept_indices)
        for removed, absorber in result.absorbed_by.items():
            assert removed not in kept
            assert absorber in kept

    def test_transitive_chain_single_pass(self):
        # A (1 diff) absorbs B (2 diffs) absorbs C (3 diffs); one pass must
        # remove both B and C whatever the processing order
        target = ("o0", "o1", "o2")
        a = ("v0", "o1", "o2")
        b = ("v0", "v1", "o2")
        c = ("v0", "v1", "v2")
        for ordering in ([a, b, c], [c, b, a], [b, c, a]):
            result = absorb(ordering, target)
            kept_objects = [ordering[i] for i in result.kept_indices]
            assert kept_objects == [a]

    def test_absorption_preserves_exact_probability(self, running_parts):
        preferences, competitors, target = running_parts
        full = skyline_probability_det(preferences, competitors, target)
        result = absorb(competitors, target)
        reduced = skyline_probability_det(
            preferences,
            [competitors[i] for i in result.kept_indices],
            target,
        )
        assert reduced.probability == pytest.approx(full.probability)

    def test_empty_competitors(self):
        result = absorb([], ("o",))
        assert result.kept_indices == ()
        assert result.removed_count == 0

    def test_duplicate_of_target_kept_untouched(self):
        # Γ = ∅ objects are skipped (handled upstream by the engine)
        result = absorb([("o",)], ("o",))
        assert result.kept_indices == (0,)


class TestPartition:
    def test_running_example_three_singletons(self, running_parts):
        _, competitors, target = running_parts
        kept = absorb(competitors, target).kept_indices
        groups = partition(competitors, target, kept)
        assert sorted(map(tuple, groups)) == [(1,), (2,), (3,)]

    def test_shared_value_groups_together(self):
        target = ("o0", "o1")
        competitors = [("a", "x"), ("a", "y"), ("b", "y"), ("c", "o1")]
        groups = partition(competitors, target)
        # a links 0-1, y links 1-2; 3 is alone
        assert sorted(map(tuple, groups)) == [(0, 1, 2), (3,)]

    def test_values_equal_to_target_do_not_link(self):
        target = ("o0", "o1")
        competitors = [("a", "o1"), ("b", "o1")]
        groups = partition(competitors, target)
        assert sorted(map(tuple, groups)) == [(0,), (1,)]

    def test_indices_restriction(self):
        target = ("o0",)
        competitors = [("a",), ("a",), ("b",)]
        groups = partition(competitors, target, indices=[0, 2])
        assert sorted(map(tuple, groups)) == [(0,), (2,)]

    def test_partition_product_equals_whole(self, running_parts):
        preferences, competitors, target = running_parts
        groups = partition(competitors, target)
        product = 1.0
        for group in groups:
            product *= skyline_probability_det(
                preferences, [competitors[i] for i in group], target
            ).probability
        whole = skyline_probability_det(
            preferences, competitors, target
        ).probability
        assert product == pytest.approx(whole)

    def test_empty(self):
        assert partition([], ("o",)) == []


class TestDropNeverDominators:
    def test_splits_on_zero_factor(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 0.0)
        model.set_preference(0, "b", "o", 0.4)
        possible, impossible = drop_never_dominators(
            model, [("a",), ("b",)], ("o",)
        )
        assert possible == [1]
        assert impossible == [0]

    def test_respects_indices(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 0.0)
        model.set_preference(0, "b", "o", 0.4)
        possible, impossible = drop_never_dominators(
            model, [("a",), ("b",)], ("o",), indices=[1]
        )
        assert possible == [1]
        assert impossible == []


class TestPreprocessPipeline:
    def test_running_example_end_to_end(self, running_parts):
        preferences, competitors, target = running_parts
        prep = preprocess(competitors, target, preferences=preferences)
        assert prep.kept_indices == (1, 2, 3)
        assert prep.absorbed_by == {0: 1}
        assert prep.partitions == ((1,), (2,), (3,))
        assert prep.kept_count == 3
        assert prep.largest_partition == 1

    def test_partition_objects_materialisation(self, running_parts):
        preferences, competitors, target = running_parts
        prep = preprocess(competitors, target, preferences=preferences)
        groups = prep.partition_objects(competitors)
        assert [len(group) for group in groups] == [1, 1, 1]
        assert groups[0][0] == competitors[1]

    def test_stages_can_be_disabled(self, running_parts):
        preferences, competitors, target = running_parts
        prep = preprocess(
            competitors, target, preferences=preferences,
            use_absorption=False, use_partition=False,
        )
        assert prep.kept_indices == (0, 1, 2, 3)
        assert prep.partitions == ((0, 1, 2, 3),)

    def test_without_preferences_no_impossible_filter(self, running_parts):
        _, competitors, target = running_parts
        prep = preprocess(competitors, target)
        assert prep.dropped_impossible == ()

    def test_impossible_dropped_with_preferences(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 0.0)
        model.set_preference(0, "b", "o", 0.4)
        prep = preprocess([("a",), ("b",)], ("o",), preferences=model)
        assert prep.dropped_impossible == (0,)
        assert prep.kept_indices == (1,)

    def test_duplicate_target_rejected(self):
        with pytest.raises(DatasetError):
            preprocess([("o",)], ("o",))

    def test_empty_competitors(self):
        prep = preprocess([], ("o",))
        assert prep.partitions == ()
        assert prep.largest_partition == 0
