"""Property-based tests (hypothesis) for the core invariants.

Random small instances are cross-checked between independent
implementations: the exhaustive world enumeration is the ground truth,
Algorithm 1 (with and without sharing), the preprocessing pipeline, the
Bonferroni bounds and the baselines must all be consistent with it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from strategies import disjoint_instance, uncertain_instance

from repro.complexity.dnf import PositiveDNF
from repro.complexity.reduction import count_models_via_skyline
from repro.core.baselines import skyline_probability_a1, skyline_probability_sac
from repro.core.engine import SkylineProbabilityEngine
from repro.core.exact import bonferroni_bounds, skyline_probability_det
from repro.core.naive import (
    enumerate_worlds,
    skyline_probabilities_naive,
    skyline_probability_naive,
)
from repro.core.objects import Dataset
from repro.core.preferences import PreferenceModel
from repro.core.preprocess import absorb, partition

SETTINGS = settings(max_examples=60, deadline=None)


class TestExactAgainstGroundTruth:
    @SETTINGS
    @given(uncertain_instance())
    def test_det_matches_world_enumeration(self, instance):
        preferences, competitors, target = instance
        det = skyline_probability_det(preferences, competitors, target)
        naive = skyline_probability_naive(preferences, competitors, target)
        assert det.probability == pytest.approx(naive, abs=1e-9)

    @SETTINGS
    @given(uncertain_instance())
    def test_sharing_is_pure_optimisation(self, instance):
        preferences, competitors, target = instance
        shared = skyline_probability_det(preferences, competitors, target)
        plain = skyline_probability_det(
            preferences, competitors, target, share_computation=False
        )
        assert shared.probability == pytest.approx(plain.probability, abs=1e-12)

    @SETTINGS
    @given(uncertain_instance())
    def test_engine_methods_agree(self, instance):
        preferences, competitors, target = instance
        if not competitors:
            return
        dataset = Dataset([target] + competitors)
        engine = SkylineProbabilityEngine(dataset, preferences)
        det = engine.skyline_probability(0, method="det").probability
        detplus = engine.skyline_probability(0, method="det+").probability
        auto = engine.skyline_probability(0, method="auto").probability
        assert detplus == pytest.approx(det, abs=1e-9)
        assert auto == pytest.approx(det, abs=1e-9)


class TestPreprocessingInvariants:
    @SETTINGS
    @given(uncertain_instance())
    def test_absorption_preserves_probability(self, instance):
        preferences, competitors, target = instance
        result = absorb(competitors, target)
        reduced = [competitors[i] for i in result.kept_indices]
        before = skyline_probability_det(
            preferences, competitors, target
        ).probability
        after = skyline_probability_det(preferences, reduced, target).probability
        assert after == pytest.approx(before, abs=1e-9)

    @SETTINGS
    @given(uncertain_instance())
    def test_partition_product_equals_whole(self, instance):
        preferences, competitors, target = instance
        groups = partition(competitors, target)
        product = 1.0
        for group in groups:
            product *= skyline_probability_det(
                preferences, [competitors[i] for i in group], target
            ).probability
        whole = skyline_probability_det(
            preferences, competitors, target
        ).probability
        assert product == pytest.approx(whole, abs=1e-9)

    @SETTINGS
    @given(uncertain_instance())
    def test_absorbed_events_are_contained(self, instance):
        # if B is absorbed by A then Pr(e_B and e_A) == Pr(e_B)
        from repro.core.dominance import (
            dominance_probability,
            joint_dominance_probability,
        )

        preferences, competitors, target = instance
        result = absorb(competitors, target)
        for absorbed, absorber in result.absorbed_by.items():
            joint = joint_dominance_probability(
                preferences,
                [competitors[absorbed], competitors[absorber]],
                target,
            )
            alone = dominance_probability(
                preferences, competitors[absorbed], target
            )
            assert joint == pytest.approx(alone, abs=1e-12)


class TestBoundsAndBaselines:
    @SETTINGS
    @given(uncertain_instance(), st.integers(min_value=1, max_value=4))
    def test_bonferroni_brackets_exact(self, instance, depth):
        preferences, competitors, target = instance
        exact = skyline_probability_det(
            preferences, competitors, target
        ).probability
        lower, upper = bonferroni_bounds(
            preferences, competitors, target, depth
        )
        assert lower - 1e-9 <= exact <= upper + 1e-9

    @SETTINGS
    @given(disjoint_instance())
    def test_sac_exact_on_value_disjoint_instances(self, instance):
        preferences, competitors, target = instance
        sac = skyline_probability_sac(preferences, competitors, target)
        det = skyline_probability_det(
            preferences, competitors, target
        ).probability
        assert sac == pytest.approx(det, abs=1e-9)

    @SETTINGS
    @given(uncertain_instance())
    def test_sac_never_overestimates(self, instance):
        # shared factors only make the union smaller than independence
        # predicts, so Sac's survival product is a lower bound on sky
        preferences, competitors, target = instance
        sac = skyline_probability_sac(preferences, competitors, target)
        det = skyline_probability_det(
            preferences, competitors, target
        ).probability
        assert sac <= det + 1e-9

    @SETTINGS
    @given(uncertain_instance())
    def test_a1_is_an_upper_bound_decreasing_in_top(self, instance):
        preferences, competitors, target = instance
        exact = skyline_probability_det(
            preferences, competitors, target
        ).probability
        previous = 1.0
        for top in range(len(competitors) + 1):
            value = skyline_probability_a1(
                preferences, competitors, target, top
            )
            assert value >= exact - 1e-9
            assert value <= previous + 1e-9
            previous = value


class TestWorldEnumeration:
    @SETTINGS
    @given(uncertain_instance())
    def test_world_probabilities_sum_to_one(self, instance):
        preferences, competitors, target = instance
        dataset = Dataset([target] + competitors)
        total = sum(p for _, p in enumerate_worlds(preferences, dataset))
        assert total == pytest.approx(1.0, abs=1e-9)

    @SETTINGS
    @given(uncertain_instance())
    def test_all_objects_consistent_with_single_object(self, instance):
        preferences, competitors, target = instance
        dataset = Dataset([target] + competitors)
        bulk = skyline_probabilities_naive(preferences, dataset)
        for index in range(len(dataset)):
            single = skyline_probability_naive(
                preferences, dataset.others(index), dataset[index]
            )
            assert bulk[index] == pytest.approx(single, abs=1e-9)


class TestReductionProperty:
    @SETTINGS
    @given(
        st.integers(min_value=2, max_value=7),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_dnf_counting_round_trip(self, variables, clauses, seed):
        formula = PositiveDNF.random(variables, clauses, seed=seed)
        assert count_models_via_skyline(formula) == formula.count_satisfying()


class TestSerializationProperty:
    @SETTINGS
    @given(uncertain_instance())
    def test_preference_model_round_trip(self, instance):
        preferences, _, _ = instance
        assert PreferenceModel.from_json(preferences.to_json()) == preferences

    @SETTINGS
    @given(uncertain_instance())
    def test_dataset_round_trip(self, instance):
        _, competitors, target = instance
        dataset = Dataset([target] + competitors)
        assert Dataset.from_json(dataset.to_json()) == dataset
