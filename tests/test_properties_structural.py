"""Structural property tests: soundness of removals and query purity."""

from __future__ import annotations

import pytest

from hypothesis import given, settings

from strategies import uncertain_instance

from repro.core.engine import SkylineProbabilityEngine
from repro.core.objects import Dataset
from repro.core.preprocess import absorb, partition, preprocess
from repro.core.pruning import top_k_pruned

SETTINGS = settings(max_examples=60, deadline=None)


def _gamma(competitor, target):
    return {
        (dimension, value)
        for dimension, (value, target_value) in enumerate(
            zip(competitor, target)
        )
        if value != target_value
    }


class TestAbsorptionSoundness:
    @SETTINGS
    @given(uncertain_instance())
    def test_every_removal_is_justified(self, instance):
        """Whatever absorb removes must satisfy Theorem 3's condition."""
        _, competitors, target = instance
        result = absorb(competitors, target)
        for absorbed, absorber in result.absorbed_by.items():
            assert _gamma(competitors[absorber], target) <= _gamma(
                competitors[absorbed], target
            )

    @SETTINGS
    @given(uncertain_instance())
    def test_survivors_form_an_antichain(self, instance):
        """No survivor's Γ may contain another's (else absorption missed)."""
        _, competitors, target = instance
        result = absorb(competitors, target)
        kept = [competitors[i] for i in result.kept_indices]
        for i, a in enumerate(kept):
            for j, b in enumerate(kept):
                if i != j:
                    assert not _gamma(a, target) < _gamma(b, target)

    @SETTINGS
    @given(uncertain_instance())
    def test_partition_is_exact_cover(self, instance):
        _, competitors, target = instance
        groups = partition(competitors, target)
        flattened = sorted(index for group in groups for index in group)
        assert flattened == list(range(len(competitors)))

    @SETTINGS
    @given(uncertain_instance())
    def test_partitions_share_no_relevant_values(self, instance):
        _, competitors, target = instance
        groups = partition(competitors, target)
        group_values = [
            set().union(
                *(_gamma(competitors[index], target) for index in group)
            )
            for group in groups
        ]
        for i, a in enumerate(group_values):
            for b in group_values[i + 1 :]:
                assert not a & b


class TestQueryPurity:
    @SETTINGS
    @given(uncertain_instance())
    def test_queries_do_not_mutate_inputs(self, instance):
        preferences, competitors, target = instance
        if not competitors:
            return
        dataset = Dataset([target] + competitors)
        snapshot = preferences.to_dict()
        engine = SkylineProbabilityEngine(dataset, preferences)
        engine.skyline_probability(0, method="det+")
        engine.skyline_probability(0, method="sam", samples=50, seed=0)
        preprocess(competitors, target, preferences=preferences)
        top_k_pruned(dataset, preferences, 1, method="det+")
        assert preferences.to_dict() == snapshot
        assert dataset.objects == tuple([target] + competitors)

    @SETTINGS
    @given(uncertain_instance())
    def test_repeated_exact_queries_are_stable(self, instance):
        preferences, competitors, target = instance
        if not competitors:
            return
        dataset = Dataset([target] + competitors)
        engine = SkylineProbabilityEngine(dataset, preferences)
        first = engine.skyline_probability(0, method="det+").probability
        second = engine.skyline_probability(0, method="det+").probability
        assert first == second
