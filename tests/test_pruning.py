"""Unit tests for cheap bounds and the bounded top-k evaluation."""

from __future__ import annotations

import pytest

from hypothesis import given, settings

from strategies import uncertain_instance

from repro.core.engine import SkylineProbabilityEngine
from repro.core.exact import skyline_probability_det
from repro.core.objects import Dataset
from repro.core.preferences import PreferenceModel
from repro.core.pruning import (
    skyline_probability_bounds,
    top_k_pruned,
)
from repro.data.blockzipf import block_zipf_dataset
from repro.data.procedural import HashedPreferenceModel
from repro.errors import ReproError


class TestBounds:
    def test_bracket_on_running_example(self, running):
        dataset, preferences = running
        lower, upper = skyline_probability_bounds(
            preferences, dataset.others(0), dataset[0]
        )
        assert lower <= 3 / 16 <= upper
        assert lower == pytest.approx(9 / 64)  # the Sac value
        # greedy disjoint set {Q2, Q4, Q3} covers everything but the
        # absorbed Q1, so the upper bound is tight here
        assert upper == pytest.approx(3 / 16)

    def test_tight_for_single_competitor(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 0.3)
        lower, upper = skyline_probability_bounds(model, [("a",)], ("o",))
        assert lower == upper == pytest.approx(0.7)

    def test_certain_dominator_collapses_to_zero(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 1.0)
        model.set_preference(0, "b", "o", 0.5)
        assert skyline_probability_bounds(
            model, [("a",), ("b",)], ("o",)
        ) == (0.0, 0.0)

    def test_no_competitors(self):
        assert skyline_probability_bounds(
            PreferenceModel.equal(1), [], ("o",)
        ) == (1.0, 1.0)

    @settings(max_examples=40, deadline=None)
    @given(uncertain_instance())
    def test_bounds_always_bracket_exact(self, instance):
        preferences, competitors, target = instance
        exact = skyline_probability_det(
            preferences, competitors, target
        ).probability
        lower, upper = skyline_probability_bounds(
            preferences, competitors, target
        )
        assert lower - 1e-9 <= exact <= upper + 1e-9


class TestTopKPruned:
    @pytest.fixture
    def engine_parts(self):
        dataset = block_zipf_dataset(60, 3, seed=41)
        preferences = HashedPreferenceModel(3, seed=42)
        return dataset, preferences

    def test_matches_exhaustive_top_k(self, engine_parts):
        dataset, preferences = engine_parts
        engine = SkylineProbabilityEngine(dataset, preferences)
        expected = engine.top_k(5, method="det+")
        result = top_k_pruned(dataset, preferences, 5, method="det+")
        assert list(result.ranking) == expected

    def test_prunes_some_objects(self, engine_parts):
        dataset, preferences = engine_parts
        result = top_k_pruned(dataset, preferences, 3, method="det+")
        assert result.refined + result.pruned == len(dataset)
        assert result.pruned > 0  # the whole point of the bounds

    def test_k_larger_than_dataset(self, observation):
        dataset, preferences = observation
        result = top_k_pruned(dataset, preferences, 10, method="det")
        assert len(result.ranking) == 3

    def test_reuses_supplied_engine(self, engine_parts):
        dataset, preferences = engine_parts
        engine = SkylineProbabilityEngine(dataset, preferences)
        result = top_k_pruned(
            dataset, preferences, 2, method="det+", engine=engine
        )
        assert len(result.ranking) == 2

    def test_invalid_k(self, observation):
        dataset, preferences = observation
        with pytest.raises(ReproError):
            top_k_pruned(dataset, preferences, 0)

    def test_observation_example_order(self, observation):
        dataset, preferences = observation
        result = top_k_pruned(dataset, preferences, 2, method="det")
        assert [index for index, _ in result.ranking] == [0, 2]
        assert result.ranking[0][1] == pytest.approx(0.5)
