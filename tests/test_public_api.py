"""Public-API surface tests: everything exported is importable and the
documented entry points behave as advertised."""

from __future__ import annotations

import importlib

import pytest

import repro
import repro.bench
import repro.complexity
import repro.core
import repro.data
import repro.util


@pytest.mark.parametrize(
    "module",
    [repro, repro.core, repro.data, repro.complexity, repro.bench, repro.util],
)
def test_all_exports_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_version_is_exposed():
    assert repro.__version__.count(".") == 2


def test_readme_quickstart_snippet_runs():
    from repro import Dataset, PreferenceModel, SkylineProbabilityEngine

    data = Dataset([("a", "x"), ("b", "y"), ("a", "y")])
    prefs = PreferenceModel.equal(2)
    engine = SkylineProbabilityEngine(data, prefs)
    report = engine.skyline_probability(0)
    assert 0.0 <= report.probability <= 1.0


def test_docstring_quickstart_in_package():
    assert "Quickstart" in repro.__doc__


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.core.objects",
        "repro.core.preferences",
        "repro.core.dominance",
        "repro.core.exact",
        "repro.core.naive",
        "repro.core.sampling",
        "repro.core.preprocess",
        "repro.core.engine",
        "repro.core.dynamic",
        "repro.core.baselines",
        "repro.core.bounds",
        "repro.core.skyline",
        "repro.core.topk",
        "repro.core.pruning",
        "repro.core.validate",
        "repro.core.sensitivity",
        "repro.core.operators",
        "repro.complexity.dnf",
        "repro.complexity.reduction",
        "repro.data.uniform",
        "repro.data.blockzipf",
        "repro.data.nursery",
        "repro.data.prefgen",
        "repro.data.procedural",
        "repro.data.examples",
        "repro.bench.harness",
        "repro.bench.experiments",
        "repro.bench.plot",
        "repro.io",
        "repro.errors",
    ],
)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__) > 40, module_name


def test_public_functions_documented():
    undocumented = []
    for module_name in (
        "repro.core.exact",
        "repro.core.sampling",
        "repro.core.preprocess",
        "repro.core.engine",
        "repro.core.pruning",
        "repro.io",
    ):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if callable(item) and not (item.__doc__ or "").strip():
                undocumented.append(f"{module_name}.{name}")
    assert not undocumented, undocumented
