"""Unit tests for the Theorem-1 reduction (#DNF ↔ skyline probability)."""

from __future__ import annotations

import pytest

from repro.complexity.dnf import PositiveDNF
from repro.complexity.reduction import (
    count_models_via_skyline,
    dnf_to_skyline_instance,
    model_count_from_skyline_probability,
    skyline_probability_of_dnf,
)
from repro.core.exact import skyline_probability_det
from repro.core.preprocess import absorb
from repro.core.sampling import skyline_probability_sampled


class TestInstanceConstruction:
    def test_paper_example_structure(self):
        formula = PositiveDNF(4, [(0, 2), (1, 3), (2, 3)])
        instance = dnf_to_skyline_instance(formula)
        assert instance.target == ("o0", "o1", "o2", "o3")
        assert len(instance.competitors) == 3
        # clause (x1 ∧ x3) -> q on dims {0, 2}, o elsewhere
        assert instance.competitors[0] == ("q0", "o1", "q2", "o3")
        assert instance.assignment_probability == pytest.approx(1 / 16)

    def test_preferences_are_half(self):
        formula = PositiveDNF(2, [(0,)])
        instance = dnf_to_skyline_instance(formula)
        assert instance.preferences.prob_prefers(0, "q0", "o0") == 0.5
        assert instance.preferences.prob_prefers(0, "o0", "q0") == 0.5


class TestEquivalence:
    def test_paper_example_counts(self):
        formula = PositiveDNF(4, [(0, 2), (1, 3), (2, 3)])
        assert count_models_via_skyline(formula) == 8
        assert skyline_probability_of_dnf(formula) == pytest.approx(0.5)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_round_trip(self, seed):
        formula = PositiveDNF.random(6, 5, seed=seed)
        assert count_models_via_skyline(formula) == formula.count_satisfying()

    def test_skyline_value_matches_oracle(self):
        formula = PositiveDNF.random(8, 6, seed=77)
        instance = dnf_to_skyline_instance(formula)
        sky = skyline_probability_det(
            instance.preferences, instance.competitors, instance.target
        ).probability
        assert sky == pytest.approx(skyline_probability_of_dnf(formula))

    def test_model_count_recovery_rounds(self):
        formula = PositiveDNF(3, [(0,), (1, 2)])
        sky = skyline_probability_of_dnf(formula)
        assert model_count_from_skyline_probability(
            formula, sky + 1e-12
        ) == formula.count_satisfying()

    def test_sampling_agrees_with_count(self):
        formula = PositiveDNF.random(5, 4, seed=5)
        instance = dnf_to_skyline_instance(formula)
        estimate = skyline_probability_sampled(
            instance.preferences, instance.competitors, instance.target,
            samples=40000, seed=6,
        ).estimate
        assert estimate == pytest.approx(
            skyline_probability_of_dnf(formula), abs=0.01
        )


class TestStructuralCorrespondence:
    def test_clause_subsumption_equals_absorption(self):
        # C1 ⊂ C2 semantically subsumes C2; on the reduced instance this
        # is exactly absorption of Q2 by Q1
        formula = PositiveDNF(4, [(0, 1), (0, 1, 2), (3,)])
        instance = dnf_to_skyline_instance(formula)
        result = absorb(list(instance.competitors), instance.target)
        assert result.absorbed_by == {1: 0}

    def test_variable_disjoint_clauses_partition(self):
        from repro.core.preprocess import partition

        formula = PositiveDNF(4, [(0, 1), (2, 3)])
        instance = dnf_to_skyline_instance(formula)
        groups = partition(list(instance.competitors), instance.target)
        assert sorted(map(tuple, groups)) == [(0,), (1,)]

    def test_shared_variable_clauses_stay_together(self):
        from repro.core.preprocess import partition

        formula = PositiveDNF(3, [(0, 1), (1, 2)])
        instance = dnf_to_skyline_instance(formula)
        groups = partition(list(instance.competitors), instance.target)
        assert sorted(map(tuple, groups)) == [(0, 1)]
