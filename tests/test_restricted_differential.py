"""Differential oracle suite for restricted/subspace skyline queries.

Three independent implementations answer every restricted query:

1. the shared-pass planner (:func:`repro.restricted_skyline_probabilities`
   with ``share_pass=True``) — one full-dimensional dominance pass,
   factors re-sliced per restriction;
2. the per-restriction engine recompute (``share_pass=False``, which
   materialises competitors and runs the ordinary engine path); and
3. the brute-force world-enumeration oracle
   (:func:`repro.restricted_skyline_probability_naive`), which shares no
   code with the planner beyond the factor representation.

The shared pass performs the same float operations as the recompute by
construction, so (1) and (2) are asserted **bit-identical**; the oracle
enumerates worlds in a different order, so (3) is held to the repo's
cross-implementation tolerance of ``1e-9``.  Sam answers are held to
their Hoeffding ``(epsilon, delta)`` guarantee.  Degenerate corners —
empty competitor set, single dimension, target inside the subset,
projected duplicates — get exact-value tests of their own, and a
regression section proves the engine memo and the serving coalescer key
restrictions apart from full-skyline queries.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Dataset,
    DynamicSkylineEngine,
    PreferenceModel,
    SkylineProbabilityEngine,
    restricted_skyline_probabilities,
    restricted_skyline_probability_naive,
)
from repro.core.restricted import Restriction, normalize_restriction
from repro.errors import (
    DatasetError,
    DimensionalityError,
    ReproError,
    ServingError,
)
from repro.serve.coalescer import QueryCoalescer
from strategies import restricted_instance

#: Cross-implementation tolerance (same as the Det-vs-naive suites).
_ABS = 1e-9


def _naive_answer(preferences, objects, target, competitors, dims):
    """The brute-force oracle's answer for one restricted query."""
    pool = range(len(objects)) if competitors is None else competitors
    group = [objects[i] for i in pool if i != target]
    return restricted_skyline_probability_naive(
        preferences, group, objects[target], dims=dims
    )


# ----------------------------------------------------------------------
# Tentpole contract: shared pass == engine recompute == naive oracle.


@settings(max_examples=200, deadline=None)
@given(restricted_instance())
def test_shared_pass_bit_identical_to_recompute_and_matches_oracle(instance):
    preferences, objects, target, competitors, dims = instance
    engine = SkylineProbabilityEngine(Dataset(objects), preferences)
    shared = restricted_skyline_probabilities(
        engine, [target], competitors=competitors, dims=dims, method="det+"
    )
    recomputed = restricted_skyline_probabilities(
        engine,
        [target],
        competitors=competitors,
        dims=dims,
        method="det+",
        share_pass=False,
    )
    assert shared.probabilities == recomputed.probabilities
    oracle = _naive_answer(preferences, objects, target, competitors, dims)
    assert shared.probabilities[0][0] == pytest.approx(oracle, abs=_ABS)


@settings(max_examples=100, deadline=None)
@given(restricted_instance())
def test_auto_method_bit_identical_to_recompute(instance):
    preferences, objects, target, competitors, dims = instance
    engine = SkylineProbabilityEngine(Dataset(objects), preferences)
    shared = restricted_skyline_probabilities(
        engine, [target], competitors=competitors, dims=dims, method="auto"
    )
    recomputed = restricted_skyline_probabilities(
        engine,
        [target],
        competitors=competitors,
        dims=dims,
        method="auto",
        share_pass=False,
    )
    assert shared.probabilities == recomputed.probabilities


@settings(max_examples=100, deadline=None)
@given(restricted_instance())
def test_engine_kwargs_match_planner(instance):
    """engine.skyline_probability(competitors=..., dims=...) is the
    planner's recompute path — it must match the shared pass too."""
    preferences, objects, target, competitors, dims = instance
    engine = SkylineProbabilityEngine(Dataset(objects), preferences)
    direct = engine.skyline_probability(
        target, method="det+", competitors=competitors, dims=dims
    )
    shared = restricted_skyline_probabilities(
        engine, [target], competitors=competitors, dims=dims, method="det+"
    )
    assert direct.probability == shared.probabilities[0][0]


@settings(max_examples=50, deadline=None)
@given(restricted_instance(), st.integers(min_value=0, max_value=2**31 - 1))
def test_sam_within_hoeffding_bounds(instance, seed):
    preferences, objects, target, competitors, dims = instance
    engine = SkylineProbabilityEngine(Dataset(objects), preferences)
    epsilon, delta = 0.2, 1e-6
    result = restricted_skyline_probabilities(
        engine,
        [target],
        competitors=competitors,
        dims=dims,
        method="sam",
        epsilon=epsilon,
        delta=delta,
        seed=seed,
    )
    oracle = _naive_answer(preferences, objects, target, competitors, dims)
    assert abs(result.probabilities[0][0] - oracle) <= epsilon + _ABS


@settings(max_examples=50, deadline=None)
@given(restricted_instance(), st.integers(min_value=0, max_value=2**31 - 1))
def test_sam_shared_pass_bit_identical_to_recompute(instance, seed):
    preferences, objects, target, competitors, dims = instance
    engine = SkylineProbabilityEngine(Dataset(objects), preferences)
    shared = restricted_skyline_probabilities(
        engine,
        [target],
        competitors=competitors,
        dims=dims,
        method="sam",
        samples=500,
        seed=seed,
    )
    recomputed = restricted_skyline_probabilities(
        engine,
        [target],
        competitors=competitors,
        dims=dims,
        method="sam",
        samples=500,
        seed=seed,
        share_pass=False,
    )
    assert shared.probabilities == recomputed.probabilities


# ----------------------------------------------------------------------
# Degenerate corners, exact values.


@pytest.fixture
def space():
    dataset = Dataset(
        [("a1", "b1"), ("a2", "b2"), ("a1", "b2"), ("a2", "b1")]
    )
    preferences = PreferenceModel(2, default=0.5)
    preferences.set_preference(0, "a2", "a1", 0.7, 0.2)
    preferences.set_preference(1, "b2", "b1", 0.6, 0.3)
    return SkylineProbabilityEngine(dataset, preferences)


def test_empty_competitor_set_is_exactly_one(space):
    result = restricted_skyline_probabilities(
        space, [0], competitors=[], method="det+"
    )
    report = result.report(0, 0)
    assert report.probability == 1.0
    assert report.exact
    direct = space.skyline_probability(0, competitors=[], method="det+")
    assert direct.probability == 1.0


def test_single_dimension_subspace_matches_oracle(space):
    dataset, preferences = space.dataset, space.preferences
    for target in range(len(dataset)):
        for dim in (0, 1):
            result = restricted_skyline_probabilities(
                space, [target], dims=[dim], method="det+"
            )
            oracle = restricted_skyline_probability_naive(
                preferences,
                [dataset[i] for i in range(len(dataset)) if i != target],
                dataset[target],
                dims=[dim],
            )
            assert result.probabilities[0][0] == pytest.approx(oracle, abs=_ABS)


def test_target_inside_competitor_subset_is_excluded(space):
    including = restricted_skyline_probabilities(
        space, [0], competitors=[0, 1, 3], method="det+"
    )
    excluding = restricted_skyline_probabilities(
        space, [0], competitors=[1, 3], method="det+"
    )
    assert including.probabilities == excluding.probabilities


def test_projected_duplicate_is_exactly_zero(space):
    # Objects 0 and 2 share "a1" on dimension 0: restricted to that
    # subspace, competitor 2 projects onto target 0 exactly.
    result = restricted_skyline_probabilities(
        space, [0], competitors=[2], dims=[0], method="det+"
    )
    report = result.report(0, 0)
    assert report.probability == 0.0
    assert report.exact
    assert report.duplicate_target
    direct = space.skyline_probability(0, competitors=[2], dims=[0])
    assert direct.probability == 0.0
    assert direct.duplicate_target


def test_duplicate_external_target_is_exactly_zero(space):
    report = space.skyline_probability(
        ("a1", "b1"), competitors=[0, 1], dims=None
    )
    assert report.probability == 0.0
    assert report.duplicate_target


def test_full_restriction_normalizes_away(space):
    restriction = normalize_restriction(
        space.dataset, competitors=[0, 1, 2, 3], dims=[0, 1]
    )
    assert restriction.is_full
    full = space.skyline_probability(0, method="det+")
    via_kwargs = space.skyline_probability(
        0, method="det+", competitors=[0, 1, 2, 3], dims=[0, 1]
    )
    assert via_kwargs.probability == full.probability


def test_restriction_validation(space):
    with pytest.raises(ReproError):
        normalize_restriction(space.dataset, dims=[])
    with pytest.raises(DimensionalityError):
        normalize_restriction(space.dataset, dims=[2])
    with pytest.raises(DatasetError):
        normalize_restriction(space.dataset, competitors=[17])
    with pytest.raises(ReproError):
        restricted_skyline_probabilities(
            space, [0], competitors=[1], restrictions=[Restriction((1,), None)]
        )
    with pytest.raises(ReproError):
        restricted_skyline_probabilities(space, [], competitors=[1])
    with pytest.raises(ReproError):
        restricted_skyline_probabilities(space, [0], restrictions=[])


def test_shared_components_are_reused_across_restrictions(space):
    restrictions = [([1, 2, 3], [0]), ([1, 2], [0]), ([1, 3], [0]), (None, [0])]
    result = restricted_skyline_probabilities(
        space, [0, 1, 2, 3], restrictions=restrictions, method="det+"
    )
    assert result.shared_pass
    assert result.component_hits > 0
    recomputed = restricted_skyline_probabilities(
        space,
        [0, 1, 2, 3],
        restrictions=restrictions,
        method="det+",
        share_pass=False,
    )
    assert result.probabilities == recomputed.probabilities


def test_naive_oracle_empty_projection_is_zero(space):
    # A competitor equal to the target on the retained dims contributes
    # no factors: the oracle must call that sky = 0 exactly.
    dataset, preferences = space.dataset, space.preferences
    assert (
        restricted_skyline_probability_naive(
            preferences, [dataset[2]], dataset[0], dims=[0]
        )
        == 0.0
    )


# ----------------------------------------------------------------------
# Regression: restriction keys must isolate memo entries and coalescer
# buckets — a full and a restricted query on the same target can never
# share either.


def test_engine_memo_isolates_restrictions(space):
    full_first = space.skyline_probability(0, method="det+")
    restricted = space.skyline_probability(
        0, method="det+", competitors=[1, 3], dims=[0]
    )
    full_again = space.skyline_probability(0, method="det+")
    restricted_again = space.skyline_probability(
        0, method="det+", competitors=[1, 3], dims=[0]
    )
    assert full_first.probability != restricted.probability
    assert full_again.probability == full_first.probability
    assert restricted_again.probability == restricted.probability
    # Distinct restrictions must not collide with each other either.
    other = space.skyline_probability(0, method="det+", dims=[0])
    assert other.probability != restricted.probability


def test_dynamic_restricted_memo_isolated_from_full(space):
    engine = DynamicSkylineEngine(
        Dataset(list(space.dataset)), space.preferences.copy()
    )
    full = engine.skyline_probability(0)
    restricted = engine.restricted_skyline_probability(
        0, competitors=[1, 3], dims=[0]
    )
    assert full.probability != restricted.probability
    assert engine.skyline_probability(0).probability == full.probability
    info = engine.restricted_cache_info()
    assert info["entries"] == 1 and info["misses"] == 1
    again = engine.restricted_skyline_probability(
        0, competitors=[1, 3], dims=[0]
    )
    assert again.probability == restricted.probability
    assert engine.restricted_cache_info()["hits"] == 1


def test_coalescer_buckets_keyed_by_restriction(space):
    engine = DynamicSkylineEngine(
        Dataset(list(space.dataset)), space.preferences.copy()
    )

    async def run():
        coalescer = QueryCoalescer(engine, window=0.05)
        full = asyncio.ensure_future(coalescer.submit(0))
        restricted = asyncio.ensure_future(
            coalescer.submit(0, competitors=[1, 3], dims=[0])
        )
        same_restriction = asyncio.ensure_future(
            coalescer.submit(0, competitors=[3, 1], dims=[0])
        )
        answers = await asyncio.gather(full, restricted, same_restriction)
        await coalescer.drain()
        return answers

    full, restricted, same_restriction = asyncio.run(run())
    # The full query rode alone; the two equal restrictions (list order
    # must not matter) coalesced with each other but never with it.
    assert full.batch_size == 1
    assert restricted.batch_size == 2
    assert same_restriction.batch_size == 2
    assert full.report.probability != restricted.report.probability
    assert restricted.report.probability == same_restriction.report.probability


def test_coalescer_rejects_unhashable_restriction(space):
    engine = DynamicSkylineEngine(
        Dataset(list(space.dataset)), space.preferences.copy()
    )

    async def run():
        coalescer = QueryCoalescer(engine, window=0.0)
        with pytest.raises(ServingError):
            await coalescer.submit(0, competitors=3)
        await coalescer.drain()

    asyncio.run(run())


# ----------------------------------------------------------------------
# Batch planner threading.


def test_batch_planner_threads_restrictions(space):
    from repro.core.batch import batch_skyline_probabilities

    batch = batch_skyline_probabilities(
        space, indices=[0, 1, 2], workers=1, competitors=[1, 3], dims=[0]
    )
    for index, probability in zip(batch.indices, batch.probabilities):
        direct = space.skyline_probability(
            index, competitors=[1, 3], dims=[0]
        )
        assert probability == direct.probability


# ----------------------------------------------------------------------
# Elicitation workload replays consistently.


def test_elicitation_replay_matches_fresh_rebuild():
    from repro.data import (
        block_zipf_dataset,
        elicitation_session,
        random_preferences,
        replay_session,
    )

    dataset = block_zipf_dataset(8, 2, seed=11)
    preferences = random_preferences(dataset, seed=12)
    session = elicitation_session(
        dataset, preferences, rounds=3, queries_per_round=2, seed=13
    )
    answers = replay_session(session)
    assert len(answers) == len(session.queries())
    # Replaying the edits onto a fresh engine and re-asking the final
    # query must agree with the session's own in-flight answer.
    engine = DynamicSkylineEngine(dataset, preferences.copy())
    for step in session.edit_script():
        engine.update_preference(
            step["dimension"],
            step["a"],
            step["b"],
            step["forward"],
            step["backward"],
        )
    last = session.queries()[-1]
    report = engine.restricted_skyline_probability(
        last["target"], competitors=last["competitors"], dims=last["dims"]
    )
    assert report.probability == answers[-1]["probability"]


# ----------------------------------------------------------------------
# Planner method matrix: every method= branch answers the same query.


def test_naive_and_det_methods_through_planner(space):
    """method="naive" and method="det" take dedicated planner branches;
    both must agree with the det+ answer on the same restriction."""
    reference = restricted_skyline_probabilities(
        space, [1], competitors=[0, 3], dims=[1], method="det+"
    ).probabilities[0][0]
    for method in ("naive", "det"):
        result = restricted_skyline_probabilities(
            space, [1], competitors=[0, 3], dims=[1], method=method
        )
        report = result.report(0, 0)
        assert report.method == method
        assert report.exact
        assert report.probability == pytest.approx(reference, abs=_ABS)


def test_sam_plus_method_within_hoeffding_bounds(space):
    epsilon, delta = 0.2, 1e-6
    exact = restricted_skyline_probabilities(
        space, [1], competitors=[0, 3], dims=[1], method="det+"
    ).probabilities[0][0]
    result = restricted_skyline_probabilities(
        space,
        [1],
        competitors=[0, 3],
        dims=[1],
        method="sam+",
        epsilon=epsilon,
        delta=delta,
        seed=5,
    )
    report = result.report(0, 0)
    assert report.method == "sam+"
    assert not report.exact
    assert abs(report.probability - exact) <= epsilon


def test_unknown_method_and_kernel_are_rejected(space):
    with pytest.raises(ReproError):
        restricted_skyline_probabilities(space, [0], dims=[0], method="nope")
    with pytest.raises(ReproError):
        restricted_skyline_probabilities(
            space, [0], dims=[0], det_kernel="nope"
        )


def test_restriction_objects_accepted_in_restrictions(space):
    """restrictions= accepts already-normalized Restriction objects."""
    spec = normalize_restriction(space.dataset, competitors=[1, 3], dims=[1])
    via_object = restricted_skyline_probabilities(
        space, [0], restrictions=[spec], method="det+"
    )
    via_tuple = restricted_skyline_probabilities(
        space, [0], restrictions=[([1, 3], [1])], method="det+"
    )
    assert via_object.probabilities == via_tuple.probabilities


# ----------------------------------------------------------------------
# Budget behaviour: oversized partitions fail det+ and sample under auto.


def _tight_budget_engine():
    """Two competitors share the (1, "b2") key but neither's key set is
    a subset of the other's, so absorption cannot collapse them: they
    form one partition of size 2, over the max_exact_objects=1 budget."""
    dataset = Dataset([("a1", "b1"), ("a2", "b2"), ("a3", "b2")])
    preferences = PreferenceModel(2, default=0.5)
    return SkylineProbabilityEngine(
        dataset, preferences, max_exact_objects=1
    )


def test_det_plus_raises_on_oversized_partition():
    from repro.errors import ComputationBudgetError

    engine = _tight_budget_engine()
    with pytest.raises(ComputationBudgetError):
        restricted_skyline_probabilities(
            engine, [0], competitors=[1, 2], method="det+"
        )


def test_auto_samples_oversized_partition_within_bounds():
    engine = _tight_budget_engine()
    epsilon, delta = 0.2, 1e-6
    result = restricted_skyline_probabilities(
        engine,
        [0],
        competitors=[1, 2],
        method="auto",
        epsilon=epsilon,
        delta=delta,
        seed=9,
    )
    report = result.report(0, 0)
    assert not report.exact
    oracle = _naive_answer(
        engine.preferences, list(engine.dataset), 0, [1, 2], None
    )
    assert abs(report.probability - oracle) <= epsilon


# ----------------------------------------------------------------------
# Targets given as explicit value tuples (external / hypothetical).


def test_explicit_value_target_matches_oracle(space):
    """A target given by value competes against the whole dataset —
    nothing is excluded from the pool."""
    target_values = ("a2", "b2")
    result = restricted_skyline_probabilities(
        space, [target_values], dims=[1], method="det+"
    )
    oracle = restricted_skyline_probability_naive(
        space.preferences,
        [space.dataset[i] for i in range(len(space.dataset)) if i != 1],
        target_values,
        dims=[1],
    )
    # Object 1 *is* ("a2", "b2"): the by-value spelling keeps it in the
    # pool, where it projects to a duplicate on dim 1?  No — it shares
    # every value, so the sliced factor list is empty and sky must be 0.
    assert result.probabilities[0][0] == 0.0
    del oracle  # the duplicate dominates; oracle comparison is moot


def test_explicit_value_target_without_duplicate(space):
    result = restricted_skyline_probabilities(
        space, [("a3", "b3")], method="det+"
    )
    oracle = restricted_skyline_probability_naive(
        space.preferences, list(space.dataset), ("a3", "b3"), dims=None
    )
    assert result.probabilities[0][0] == pytest.approx(oracle, abs=_ABS)


def test_explicit_value_target_wrong_dimensionality(space):
    with pytest.raises(DimensionalityError):
        restricted_skyline_probabilities(
            space, [("a1", "b1", "c1")], method="det+"
        )
