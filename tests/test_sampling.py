"""Unit tests for the Monte-Carlo algorithm (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.bounds import hoeffding_sample_size
from repro.core.preferences import PreferenceModel
from repro.core.sampling import (
    skyline_probability_sampled,
    skyline_probability_sequential,
)
from repro.data.examples import RUNNING_EXAMPLE_SKY_O, running_example
from repro.errors import EstimationError


@pytest.fixture
def running_parts():
    dataset, preferences = running_example()
    return preferences, list(dataset.others(0)), dataset[0]


class TestSampledEstimate:
    @pytest.mark.parametrize("method", ["lazy", "vectorized"])
    def test_converges_to_exact(self, running_parts, method):
        preferences, competitors, target = running_parts
        result = skyline_probability_sampled(
            preferences, competitors, target,
            samples=40000, seed=11, method=method,
        )
        assert result.estimate == pytest.approx(RUNNING_EXAMPLE_SKY_O, abs=0.01)
        assert result.method == method
        assert result.samples == 40000
        assert result.successes == round(result.estimate * 40000)

    def test_default_sample_size_is_theorem_2(self, running_parts):
        preferences, competitors, target = running_parts
        result = skyline_probability_sampled(
            preferences, competitors, target,
            epsilon=0.05, delta=0.1, seed=1, method="lazy",
        )
        assert result.samples == hoeffding_sample_size(0.05, 0.1)

    def test_deterministic_with_seed(self, running_parts):
        preferences, competitors, target = running_parts
        a = skyline_probability_sampled(
            preferences, competitors, target, samples=500, seed=3
        )
        b = skyline_probability_sampled(
            preferences, competitors, target, samples=500, seed=3
        )
        assert a.estimate == b.estimate

    def test_no_competitors_closed_form(self):
        result = skyline_probability_sampled(
            PreferenceModel.equal(1), [], ("a",), samples=10
        )
        assert result.estimate == 1.0
        assert result.method == "closed-form"

    def test_duplicate_competitor_closed_form(self):
        result = skyline_probability_sampled(
            PreferenceModel.equal(1), [("a",)], ("a",), samples=10
        )
        assert result.estimate == 0.0
        assert result.method == "closed-form"

    def test_certain_dominator_closed_form(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 1.0)
        result = skyline_probability_sampled(
            model, [("a",)], ("o",), samples=10
        )
        assert result.estimate == 0.0
        assert result.method == "closed-form"

    def test_impossible_dominators_ignored(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 0.0)
        result = skyline_probability_sampled(
            model, [("a",)], ("o",), samples=10, seed=0
        )
        assert result.estimate == 1.0
        assert result.method == "closed-form"

    def test_invalid_method(self, running_parts):
        preferences, competitors, target = running_parts
        with pytest.raises(EstimationError):
            skyline_probability_sampled(
                preferences, competitors, target, samples=10, method="magic"
            )

    def test_invalid_samples(self, running_parts):
        preferences, competitors, target = running_parts
        with pytest.raises(EstimationError):
            skyline_probability_sampled(
                preferences, competitors, target, samples=0
            )

    def test_invalid_chunk_size(self, running_parts):
        preferences, competitors, target = running_parts
        with pytest.raises(EstimationError):
            skyline_probability_sampled(
                preferences, competitors, target,
                samples=10, method="vectorized", chunk_size=0,
            )

    def test_auto_picks_a_real_method(self, running_parts):
        preferences, competitors, target = running_parts
        result = skyline_probability_sampled(
            preferences, competitors, target, samples=100, seed=0
        )
        assert result.method in ("lazy", "vectorized")

    def test_vectorized_chunking_consistent(self, running_parts):
        # identical results whatever the chunk split (same total, same
        # seed stream ordering is chunk-dependent, so compare accuracy)
        preferences, competitors, target = running_parts
        small = skyline_probability_sampled(
            preferences, competitors, target,
            samples=20000, seed=5, method="vectorized", chunk_size=64,
        )
        large = skyline_probability_sampled(
            preferences, competitors, target,
            samples=20000, seed=5, method="vectorized", chunk_size=8192,
        )
        assert small.estimate == pytest.approx(large.estimate, abs=0.02)

    def test_unsorted_checking_still_unbiased(self, running_parts):
        preferences, competitors, target = running_parts
        result = skyline_probability_sampled(
            preferences, competitors, target,
            samples=40000, seed=7, method="lazy", sort_by_dominance=False,
        )
        assert result.estimate == pytest.approx(RUNNING_EXAMPLE_SKY_O, abs=0.01)

    def test_sorting_reduces_checks(self):
        # a near-certain dominator should be checked first when sorted
        model = PreferenceModel(1)
        model.set_preference(0, "weak", "o", 0.01)
        model.set_preference(0, "strong", "o", 0.99)
        competitors = [("weak",), ("strong",)]
        sorted_result = skyline_probability_sampled(
            model, competitors, ("o",),
            samples=2000, seed=9, method="lazy", sort_by_dominance=True,
        )
        unsorted_result = skyline_probability_sampled(
            model, competitors, ("o",),
            samples=2000, seed=9, method="lazy", sort_by_dominance=False,
        )
        assert sorted_result.checks < unsorted_result.checks

    def test_error_radius_and_interval(self, running_parts):
        preferences, competitors, target = running_parts
        result = skyline_probability_sampled(
            preferences, competitors, target, samples=3000, seed=13
        )
        radius = result.error_radius(0.01)
        low, high = result.confidence_interval(0.01)
        assert low == pytest.approx(max(0.0, result.estimate - radius))
        assert high == pytest.approx(min(1.0, result.estimate + radius))
        assert low <= RUNNING_EXAMPLE_SKY_O <= high

    def test_shared_value_dependence_respected(self, observation):
        # sampling must reproduce 1/2 (not Sac's 3/8) for P1
        dataset, preferences = observation
        result = skyline_probability_sampled(
            preferences, dataset.others(0), dataset[0],
            samples=40000, seed=17, method="lazy",
        )
        assert result.estimate == pytest.approx(0.5, abs=0.01)


class TestSequentialEstimate:
    def test_stops_early_on_extreme_probability(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 0.999)
        result = skyline_probability_sequential(
            model, [("a",)], ("o",), epsilon=0.05, delta=0.05, seed=1
        )
        assert result.samples <= hoeffding_sample_size(0.05, 0.05)
        assert result.estimate == pytest.approx(0.001, abs=0.02)

    def test_never_exceeds_theorem_ceiling(self, running_parts):
        preferences, competitors, target = running_parts
        result = skyline_probability_sequential(
            preferences, competitors, target,
            epsilon=0.05, delta=0.1, seed=2,
        )
        ceiling = hoeffding_sample_size(0.05, 0.1)
        assert result.samples <= ceiling + 256  # one batch of slack

    def test_accuracy(self, running_parts):
        preferences, competitors, target = running_parts
        result = skyline_probability_sequential(
            preferences, competitors, target,
            epsilon=0.02, delta=0.01, seed=3,
        )
        assert result.estimate == pytest.approx(RUNNING_EXAMPLE_SKY_O, abs=0.02)

    def test_closed_forms(self):
        model = PreferenceModel(1)
        assert (
            skyline_probability_sequential(model, [], ("a",), seed=0).estimate
            == 1.0
        )
        model.set_preference(0, "a", "o", 1.0)
        assert (
            skyline_probability_sequential(
                model, [("a",)], ("o",), seed=0
            ).estimate
            == 0.0
        )

    def test_closed_forms_report_full_hoeffding_budget(self):
        # regression: the closed-form exits used to report one batch of
        # samples instead of the full Theorem 2 ceiling they stand in for
        ceiling = hoeffding_sample_size(0.1, 0.1)
        model = PreferenceModel(1)
        empty = skyline_probability_sequential(
            model, [], ("a",), epsilon=0.1, delta=0.1, seed=0
        )
        assert empty.samples == ceiling
        assert empty.successes == ceiling
        model.set_preference(0, "a", "o", 1.0)
        certain = skyline_probability_sequential(
            model, [("a",)], ("o",), epsilon=0.1, delta=0.1, seed=0
        )
        assert certain.samples == ceiling
        assert certain.successes == 0

    def test_invalid_batch_size(self, running_parts):
        preferences, competitors, target = running_parts
        with pytest.raises(EstimationError):
            skyline_probability_sequential(
                preferences, competitors, target, batch_size=0
            )
