"""Tests for the antithetic-variates sampler."""

from __future__ import annotations

import pytest

from repro.core.preferences import PreferenceModel
from repro.core.sampling import skyline_probability_sampled
from repro.data.examples import RUNNING_EXAMPLE_SKY_O, running_example
from repro.util.rng import spawn_rngs


@pytest.fixture(scope="module")
def parts():
    dataset, preferences = running_example()
    return preferences, list(dataset.others(0)), dataset[0]


class TestAntitheticSampler:
    def test_converges_to_exact(self, parts):
        preferences, competitors, target = parts
        result = skyline_probability_sampled(
            preferences, competitors, target,
            samples=40000, seed=1, method="antithetic",
        )
        assert result.method == "antithetic"
        assert result.samples == 40000
        assert result.estimate == pytest.approx(RUNNING_EXAMPLE_SKY_O, abs=0.01)

    def test_odd_sample_count_handled(self, parts):
        preferences, competitors, target = parts
        result = skyline_probability_sampled(
            preferences, competitors, target,
            samples=1001, seed=2, method="antithetic",
        )
        assert result.samples == 1001
        assert 0 <= result.successes <= 1001

    def test_single_sample(self, parts):
        preferences, competitors, target = parts
        result = skyline_probability_sampled(
            preferences, competitors, target,
            samples=1, seed=3, method="antithetic",
        )
        assert result.estimate in (0.0, 1.0)

    def test_deterministic_with_seed(self, parts):
        preferences, competitors, target = parts
        runs = [
            skyline_probability_sampled(
                preferences, competitors, target,
                samples=500, seed=4, method="antithetic",
            ).estimate
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_closed_forms_unaffected(self):
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 1.0)
        result = skyline_probability_sampled(
            model, [("a",)], ("o",), samples=10, method="antithetic"
        )
        assert result.estimate == 0.0

    def test_variance_not_worse_than_plain(self, parts):
        """Antithetic pairing must not inflate variance (theory: reduces).

        Compared over many independent runs with matched budgets; a
        generous 1.15 factor absorbs estimation noise.
        """
        preferences, competitors, target = parts
        samples = 512

        def spread(method, seed):
            runs = [
                skyline_probability_sampled(
                    preferences, competitors, target,
                    samples=samples, seed=rng, method=method,
                ).estimate
                for rng in spawn_rngs(seed, 120)
            ]
            mean = sum(runs) / len(runs)
            return sum((run - mean) ** 2 for run in runs) / (len(runs) - 1)

        plain = spread("vectorized", 10)
        antithetic = spread("antithetic", 11)
        assert antithetic <= plain * 1.15

    def test_extreme_probability_mirroring(self):
        # p = 0.999 dominator: mirrored draws almost never disagree, but
        # the estimator must stay unbiased
        model = PreferenceModel(1)
        model.set_preference(0, "a", "o", 0.9)
        estimates = [
            skyline_probability_sampled(
                model, [("a",)], ("o",),
                samples=1000, seed=rng, method="antithetic",
            ).estimate
            for rng in spawn_rngs(12, 40)
        ]
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(0.1, abs=0.01)
