"""Tests for sampling-internals behaviour that users indirectly rely on."""

from __future__ import annotations

import pytest

from repro.core.preferences import PreferenceModel
from repro.core.sampling import (
    _effective_chunk,
    _prepare,
    skyline_probability_sampled,
)


class TestEffectiveChunk:
    def test_narrow_instances_keep_requested_chunk(self):
        assert _effective_chunk(1024, 100) == 1024

    def test_wide_instances_get_shorter_chunks(self):
        # 50k pairs: a 1024-row chunk would be ~400 MB of doubles
        assert _effective_chunk(1024, 50_000) == 80

    def test_floor_of_sixteen(self):
        assert _effective_chunk(1024, 10_000_000) == 16

    def test_zero_pairs_guarded(self):
        assert _effective_chunk(256, 0) == 256


class TestPrepare:
    def _model(self):
        model = PreferenceModel(2)
        model.set_preference(0, "a", "o0", 0.9)
        model.set_preference(0, "b", "o0", 0.2)
        model.set_preference(1, "y", "o1", 0.5)
        return model

    def test_sorting_puts_strongest_first(self):
        model = self._model()
        prepared = _prepare(
            model,
            [("b", "o1"), ("a", "o1")],
            ("o0", "o1"),
            sort_by_dominance=True,
        )
        first = 1.0
        for index in prepared.competitor_pairs[0]:
            first *= prepared.pair_probabilities[index]
        assert first == pytest.approx(0.9)
        assert prepared.strongest_marginal == pytest.approx(0.9)

    def test_strongest_marginal_independent_of_sorting(self):
        model = self._model()
        unsorted = _prepare(
            model,
            [("b", "o1"), ("a", "o1")],
            ("o0", "o1"),
            sort_by_dominance=False,
        )
        assert unsorted.strongest_marginal == pytest.approx(0.9)

    def test_shared_variables_get_one_slot(self):
        model = self._model()
        prepared = _prepare(
            model,
            [("a", "o1"), ("a", "y")],
            ("o0", "o1"),
            sort_by_dominance=True,
        )
        # pairs: (0,'a') shared and (1,'y'): two distinct variables
        assert len(prepared.pair_probabilities) == 2

    def test_auto_uses_lazy_for_strong_dominators(self):
        # large workload but near-certain dominator: auto must pick lazy
        model = PreferenceModel(1)
        competitors = []
        model.set_preference(0, "strong", "o", 0.95)
        competitors.append(("strong",))
        for i in range(400):
            model.set_preference(0, f"v{i}", "o", 0.05)
            competitors.append((f"v{i}",))
        result = skyline_probability_sampled(
            model, competitors, ("o",), samples=2000, seed=0, method="auto"
        )
        assert result.method == "lazy"

    def test_auto_uses_vectorized_for_weak_dominators(self):
        model = PreferenceModel(1)
        competitors = []
        for i in range(400):
            model.set_preference(0, f"v{i}", "o", 0.05)
            competitors.append((f"v{i}",))
        result = skyline_probability_sampled(
            model, competitors, ("o",), samples=2000, seed=0, method="auto"
        )
        assert result.method == "vectorized"
