"""Statistical properties of the Monte-Carlo estimators.

These tests treat the samplers as black boxes and check distributional
facts: unbiasedness across independent runs, agreement between the lazy
and vectorized implementations, binomial-consistent dispersion, and the
Hoeffding guarantee holding empirically (seeded, so deterministic).
"""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import hoeffding_sample_size
from repro.core.sampling import skyline_probability_sampled
from repro.core.topk import estimate_all_skyline_probabilities
from repro.data.examples import RUNNING_EXAMPLE_SKY_O, running_example
from repro.util.rng import spawn_rngs


@pytest.fixture(scope="module")
def parts():
    dataset, preferences = running_example()
    return preferences, list(dataset.others(0)), dataset[0], dataset


class TestUnbiasedness:
    def test_mean_of_many_runs_converges(self, parts):
        preferences, competitors, target, _ = parts
        estimates = [
            skyline_probability_sampled(
                preferences, competitors, target,
                samples=400, seed=rng, method="lazy",
            ).estimate
            for rng in spawn_rngs(1234, 60)
        ]
        mean = sum(estimates) / len(estimates)
        # 60 * 400 = 24000 effective draws: s.e. ~ 0.0025
        assert mean == pytest.approx(RUNNING_EXAMPLE_SKY_O, abs=0.01)

    def test_lazy_and_vectorized_share_distribution(self, parts):
        preferences, competitors, target, _ = parts
        lazy_runs = [
            skyline_probability_sampled(
                preferences, competitors, target,
                samples=500, seed=rng, method="lazy",
            ).estimate
            for rng in spawn_rngs(77, 30)
        ]
        vector_runs = [
            skyline_probability_sampled(
                preferences, competitors, target,
                samples=500, seed=rng, method="vectorized",
            ).estimate
            for rng in spawn_rngs(78, 30)
        ]
        lazy_mean = sum(lazy_runs) / len(lazy_runs)
        vector_mean = sum(vector_runs) / len(vector_runs)
        assert lazy_mean == pytest.approx(vector_mean, abs=0.02)


class TestDispersion:
    def test_variance_matches_binomial(self, parts):
        preferences, competitors, target, _ = parts
        samples = 500
        runs = [
            skyline_probability_sampled(
                preferences, competitors, target,
                samples=samples, seed=rng, method="lazy",
            ).estimate
            for rng in spawn_rngs(99, 80)
        ]
        mean = sum(runs) / len(runs)
        variance = sum((run - mean) ** 2 for run in runs) / (len(runs) - 1)
        p = RUNNING_EXAMPLE_SKY_O
        expected = p * (1 - p) / samples
        # loose factor-of-two band: we only guard against gross errors
        # (e.g. accidentally correlated draws within a run)
        assert expected / 2 <= variance <= expected * 2


class TestHoeffdingGuarantee:
    def test_empirical_failure_rate_below_delta(self, parts):
        preferences, competitors, target, _ = parts
        epsilon, delta = 0.05, 0.1
        samples = hoeffding_sample_size(epsilon, delta)
        failures = sum(
            abs(
                skyline_probability_sampled(
                    preferences, competitors, target,
                    samples=samples, seed=rng,
                ).estimate
                - RUNNING_EXAMPLE_SKY_O
            )
            > epsilon
            for rng in spawn_rngs(2024, 40)
        )
        # Hoeffding is conservative: essentially no failures expected
        assert failures <= math.ceil(delta * 40)


class TestSharedWorldStatistics:
    def test_per_object_estimates_independent_of_order(self, parts):
        preferences, _, _, dataset = parts
        reordered = type(dataset)(
            list(dataset)[::-1], labels=list(dataset.labels)[::-1]
        )
        forward = estimate_all_skyline_probabilities(
            preferences, dataset, samples=20000, seed=5
        )
        backward = estimate_all_skyline_probabilities(
            preferences, reordered, samples=20000, seed=6
        )
        for label in dataset.labels:
            i = dataset.labels.index(label)
            j = reordered.labels.index(label)
            assert forward.probabilities[i] == pytest.approx(
                backward.probabilities[j], abs=0.02
            )
