"""Unit tests for exact preference-sensitivity analysis."""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import uncertain_instance

from repro.core.exact import skyline_probability_det
from repro.core.preferences import PreferenceModel
from repro.core.sensitivity import preference_sensitivity, sky_profile
from repro.errors import PreferenceError


@pytest.fixture
def simple_parts():
    # one competitor differing on one dimension: sky = 1 - Pr(a ≺ o)
    model = PreferenceModel(1)
    model.set_preference(0, "a", "o", 0.3, 0.5)
    return model, [("a",)], ("o",)


class TestSimpleCase:
    def test_conditional_values(self, simple_parts):
        preferences, competitors, target = simple_parts
        sensitivity = preference_sensitivity(
            preferences, competitors, target, 0, "a", "o"
        )
        assert sensitivity.when_forward == 0.0  # a certainly dominates
        assert sensitivity.when_backward == 1.0
        assert sensitivity.when_incomparable == 1.0
        assert sensitivity.current == pytest.approx(0.7)
        assert sensitivity.current_forward == 0.3
        assert sensitivity.current_backward == 0.5

    def test_derivatives(self, simple_parts):
        preferences, competitors, target = simple_parts
        sensitivity = preference_sensitivity(
            preferences, competitors, target, 0, "a", "o"
        )
        assert sensitivity.forward_derivative == pytest.approx(-1.0)
        assert sensitivity.backward_derivative == pytest.approx(0.0)

    def test_at_reproduces_current(self, simple_parts):
        preferences, competitors, target = simple_parts
        sensitivity = preference_sensitivity(
            preferences, competitors, target, 0, "a", "o"
        )
        assert sensitivity.at(0.3) == pytest.approx(sensitivity.current)
        assert sensitivity.at(0.3, 0.5) == pytest.approx(0.7)

    def test_threshold_solution(self, simple_parts):
        preferences, competitors, target = simple_parts
        sensitivity = preference_sensitivity(
            preferences, competitors, target, 0, "a", "o"
        )
        # sky(p) = 1 - p; crosses 0.6 at p = 0.4
        assert sensitivity.threshold_for(0.6) == pytest.approx(0.4)

    def test_threshold_unreachable(self, simple_parts):
        preferences, competitors, target = simple_parts
        sensitivity = preference_sensitivity(
            preferences, competitors, target, 0, "a", "o"
        )
        # feasible forward range is [0, 1 - 0.5]; sky there is [0.5, 1]
        assert sensitivity.threshold_for(0.2) is None

    def test_profile_is_linear(self, simple_parts):
        preferences, competitors, target = simple_parts
        sensitivity = preference_sensitivity(
            preferences, competitors, target, 0, "a", "o"
        )
        profile = sky_profile(sensitivity, [0.0, 0.25, 0.5])
        assert profile == pytest.approx([1.0, 0.75, 0.5])


class TestValidation:
    def test_identical_values_rejected(self, simple_parts):
        preferences, competitors, target = simple_parts
        with pytest.raises(PreferenceError):
            preference_sensitivity(
                preferences, competitors, target, 0, "a", "a"
            )

    def test_at_rejects_invalid_probabilities(self, simple_parts):
        preferences, competitors, target = simple_parts
        sensitivity = preference_sensitivity(
            preferences, competitors, target, 0, "a", "o"
        )
        with pytest.raises(PreferenceError):
            sensitivity.at(1.5)
        with pytest.raises(PreferenceError):
            sensitivity.at(0.8, 0.8)


class TestMultilinearity:
    @settings(max_examples=30, deadline=None)
    @given(uncertain_instance(), st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]))
    def test_profile_matches_recomputation(self, instance, new_forward):
        """The trilinear profile predicts a full re-run exactly."""
        preferences, competitors, target = instance
        if not competitors:
            return
        # vary the pair between the target's and a competitor's dim-0 value
        a = competitors[0][0]
        b = target[0]
        if a == b:
            return
        sensitivity = preference_sensitivity(
            preferences, competitors, target, 0, a, b
        )
        backward = min(
            preferences.prob_prefers(0, b, a), 1.0 - new_forward
        )
        adjusted = preferences.copy()
        adjusted.set_preference(0, a, b, new_forward, backward)
        recomputed = skyline_probability_det(
            adjusted, competitors, target
        ).probability
        assert sensitivity.at(new_forward, backward) == pytest.approx(
            recomputed, abs=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(uncertain_instance())
    def test_current_matches_convex_combination(self, instance):
        preferences, competitors, target = instance
        if not competitors:
            return
        a, b = competitors[0][0], target[0]
        if a == b:
            return
        sensitivity = preference_sensitivity(
            preferences, competitors, target, 0, a, b
        )
        combined = (
            sensitivity.current_forward * sensitivity.when_forward
            + sensitivity.current_backward * sensitivity.when_backward
            + (
                1.0
                - sensitivity.current_forward
                - sensitivity.current_backward
            )
            * sensitivity.when_incomparable
        )
        assert combined == pytest.approx(sensitivity.current, abs=1e-9)
