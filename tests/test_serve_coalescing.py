"""Differential tests of the serving tier's request coalescer.

The headline contract (ISSUE: serving tentpole): an answer served out
of a coalesced batch is **bit-identical** to the answer the same request
would get from a direct ``batch_skyline_probabilities`` call — same
probability, same sample count — because the coalescer derives each
request's stream from the request's own seed instead of its accidental
batch position.  The rest of the suite pins the mechanics: bucketing by
option compatibility, the ``max_batch`` fast path, admission control,
and failure isolation.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import Dataset, DynamicSkylineEngine, PreferenceModel
from repro.core.batch import batch_skyline_probabilities
from repro.errors import (
    AdmissionRejectedError,
    DatasetError,
    EstimationError,
    ServingError,
)
from repro.serve import QueryCoalescer, spawn_request_seed


def _engine() -> DynamicSkylineEngine:
    objects = [
        ("a", "x"),
        ("a", "y"),
        ("b", "x"),
        ("b", "z"),
        ("c", "y"),
        ("c", "z"),
    ]
    preferences = PreferenceModel(2, default=0.5)
    preferences.set_preference(0, "a", "b", 0.7, 0.2)
    preferences.set_preference(0, "a", "c", 0.6, 0.3)
    preferences.set_preference(0, "b", "c", 0.4, 0.4)
    preferences.set_preference(1, "x", "y", 0.55, 0.35)
    preferences.set_preference(1, "x", "z", 0.8, 0.1)
    preferences.set_preference(1, "y", "z", 0.3, 0.6)
    return DynamicSkylineEngine(Dataset(objects), preferences)


def _run(coroutine):
    return asyncio.run(coroutine)


class TestSeedSpawning:
    def test_none_spawns_none(self):
        assert spawn_request_seed(None) is None

    def test_spawn_matches_direct_single_query_stream(self):
        engine = _engine()
        direct = batch_skyline_probabilities(
            engine, indices=[2], seed=77, method="sam", samples=150,
            workers=1,
        ).probabilities[0]
        via_spawn = batch_skyline_probabilities(
            engine, indices=[2], seeds=[spawn_request_seed(77)],
            method="sam", samples=150, workers=1,
        ).probabilities[0]
        assert via_spawn == direct


class TestBitIdentity:
    def test_coalesced_answers_equal_direct_queries(self):
        engine = _engine()
        request_seeds = [501, 502, 503, 504]
        indices = [0, 2, 4, 5]

        async def serve():
            trace: list = []
            coalescer = QueryCoalescer(engine, window=0.05, trace=trace)
            answers = await asyncio.gather(
                *(
                    coalescer.submit(
                        index, seed=seed, method="sam", samples=150
                    )
                    for index, seed in zip(indices, request_seeds)
                )
            )
            await coalescer.drain()
            return answers, trace

        answers, trace = _run(serve())
        # One batch served all four requests...
        assert [entry["kind"] for entry in trace] == ["query"]
        assert all(answer.batch_size == 4 for answer in answers)
        assert all(answer.coalesced for answer in answers)
        # ...and every answer is bit-identical to the one a direct
        # single-object call with the same seed produces.
        for index, seed, answer in zip(indices, request_seeds, answers):
            direct = batch_skyline_probabilities(
                engine, indices=[index], seed=seed, method="sam",
                samples=150, workers=1, cache=engine.cache,
            ).reports[0]
            assert answer.report.probability == direct.probability
            assert answer.report.samples == direct.samples

    def test_exact_queries_coalesce_too(self):
        engine = _engine()

        async def serve():
            coalescer = QueryCoalescer(engine, window=0.05)
            answers = await asyncio.gather(
                *(coalescer.submit(index) for index in range(4))
            )
            await coalescer.drain()
            return answers

        answers = _run(serve())
        expected = engine.skyline_probabilities()
        assert [a.report.probability for a in answers] == expected[:4]
        assert all(a.report.exact for a in answers)


class TestBucketing:
    def test_incompatible_options_get_separate_batches(self):
        engine = _engine()

        async def serve():
            trace: list = []
            coalescer = QueryCoalescer(engine, window=0.05, trace=trace)
            await asyncio.gather(
                coalescer.submit(0, seed=1, method="sam", samples=100),
                coalescer.submit(1, seed=2, method="sam", samples=100),
                coalescer.submit(2, seed=3, method="sam", samples=200),
            )
            await coalescer.drain()
            return trace

        trace = _run(serve())
        assert len(trace) == 2
        assert sorted(len(entry["indices"]) for entry in trace) == [1, 2]

    def test_max_batch_flushes_immediately(self):
        engine = _engine()

        async def serve():
            trace: list = []
            # A window long enough that only the max_batch fast path can
            # explain a batch executing.
            coalescer = QueryCoalescer(
                engine, window=5.0, max_batch=2, trace=trace
            )
            answers = await asyncio.gather(
                *(
                    coalescer.submit(index, seed=index, method="sam",
                                     samples=100)
                    for index in range(4)
                )
            )
            await coalescer.drain()
            return answers, trace

        answers, trace = _run(serve())
        assert len(trace) == 2
        assert all(answer.batch_size == 2 for answer in answers)

    def test_unknown_option_is_rejected_up_front(self):
        engine = _engine()

        async def serve():
            coalescer = QueryCoalescer(engine, window=0.01)
            with pytest.raises(ServingError, match="unknown query option"):
                await coalescer.submit(0, typo_option=3)
            await coalescer.drain()

        _run(serve())


class TestAdmissionAndFailure:
    def test_admission_control_rejects_over_the_bound(self):
        engine = _engine()

        async def serve():
            coalescer = QueryCoalescer(
                engine, window=5.0, max_pending=2
            )
            first = asyncio.ensure_future(
                coalescer.submit(0, seed=1, method="sam", samples=100)
            )
            second = asyncio.ensure_future(
                coalescer.submit(1, seed=2, method="sam", samples=100)
            )
            await asyncio.sleep(0)
            assert coalescer.pending == 2
            with pytest.raises(AdmissionRejectedError):
                await coalescer.submit(2, seed=3, method="sam", samples=100)
            coalescer.flush()
            answers = await asyncio.gather(first, second)
            await coalescer.drain()
            return answers

        answers = _run(serve())
        assert all(answer.report.samples == 100 for answer in answers)

    def test_stale_index_fails_alone(self):
        engine = _engine()

        async def serve():
            coalescer = QueryCoalescer(engine, window=0.05)
            good = asyncio.ensure_future(
                coalescer.submit(0, seed=1, method="sam", samples=100)
            )
            bad = asyncio.ensure_future(
                coalescer.submit(99, seed=2, method="sam", samples=100)
            )
            results = await asyncio.gather(good, bad, return_exceptions=True)
            await coalescer.drain()
            return results

        good, bad = _run(serve())
        assert good.report.samples == 100
        assert isinstance(bad, DatasetError)
        assert "99" in str(bad)

    def test_deterministic_option_error_reaches_every_request(self):
        engine = _engine()

        async def serve():
            coalescer = QueryCoalescer(engine, window=0.05)
            results = await asyncio.gather(
                coalescer.submit(0, method="sam", epsilon=-1.0),
                coalescer.submit(1, method="sam", epsilon=-1.0),
                return_exceptions=True,
            )
            await coalescer.drain()
            return results

        results = _run(serve())
        assert all(isinstance(r, EstimationError) for r in results)

    def test_draining_coalescer_refuses_new_queries(self):
        engine = _engine()

        async def serve():
            coalescer = QueryCoalescer(engine, window=0.01)
            await coalescer.drain()
            with pytest.raises(ServingError, match="draining"):
                await coalescer.submit(0)

        _run(serve())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": -1.0},
            {"window": "soon"},
            {"max_batch": 0},
            {"max_pending": 0},
            {"max_batch": 2.5},
        ],
    )
    def test_bad_construction_parameters(self, kwargs):
        with pytest.raises(ServingError):
            QueryCoalescer(_engine(), **kwargs)

    def test_non_integer_target_is_rejected(self):
        engine = _engine()

        async def serve():
            coalescer = QueryCoalescer(engine, window=0.01)
            with pytest.raises(ServingError, match="object index"):
                await coalescer.submit("zero")
            await coalescer.drain()

        _run(serve())
