"""Chaos suite: concurrent served traffic replays bit-identically.

Satellite of the serving tentpole: N asyncio clients hammer one served
engine over real HTTP while one of them interleaves ``insert_object`` /
``remove_object`` / ``update_preference`` edits.  The server records
every engine operation (batches and edits) in its trace, in the order
its single engine thread executed them.  The test then rebuilds a fresh
engine and replays that trace **single-threaded**, asserting that every
batch reproduces the recorded probabilities float-for-float — and that
the probabilities the clients actually received are exactly the traced
ones.  Concurrency, coalescing, and scheduling may change the *order*
of operations, but never any answer given that order.
"""

from __future__ import annotations

import asyncio
from collections import Counter

import pytest

from repro import Dataset, DynamicSkylineEngine, PreferenceModel
from repro.core.batch import batch_skyline_probabilities
from repro.serve import (
    ServeClient,
    ServeConfig,
    SkylineServer,
    spawn_request_seed,
)

pytestmark = pytest.mark.chaos

WORKERS = 5
OPS = 8
#: Only the six seed objects are queried, so interleaved edits of the
#: seventh ("w", "w") never invalidate a request index mid-flight.
INDICES = (0, 1, 2, 3, 4, 5)


def _engine() -> DynamicSkylineEngine:
    objects = [
        ("a", "x"),
        ("a", "y"),
        ("b", "x"),
        ("b", "z"),
        ("c", "y"),
        ("c", "z"),
    ]
    preferences = PreferenceModel(2, default=0.5)
    preferences.set_preference(0, "a", "b", 0.7, 0.2)
    preferences.set_preference(0, "a", "c", 0.6, 0.3)
    preferences.set_preference(0, "b", "c", 0.4, 0.4)
    preferences.set_preference(1, "x", "y", 0.55, 0.35)
    preferences.set_preference(1, "x", "z", 0.8, 0.1)
    preferences.set_preference(1, "y", "z", 0.3, 0.6)
    return DynamicSkylineEngine(Dataset(objects), preferences)


async def _edit_op(client: ServeClient, op: int):
    """Worker 0's edit schedule: insert → reweight → remove → restore."""
    if op == 1:
        return await client.edit("insert_object", values=["w", "w"])
    if op == 3:
        return await client.edit(
            "update_preference",
            dimension=0, a="a", b="b",
            prob_a_over_b=0.65, prob_b_over_a=0.25,
        )
    if op == 5:
        return await client.edit("remove_object", target=["w", "w"])
    return await client.edit(
        "update_preference",
        dimension=0, a="a", b="b",
        prob_a_over_b=0.7, prob_b_over_a=0.2,
    )


async def _worker(worker_id: int, port: int):
    collected = []
    async with ServeClient("127.0.0.1", port) as client:
        for op in range(OPS):
            token = worker_id * 100 + op
            if worker_id == 0 and op % 2 == 1:
                response = await _edit_op(client, op)
                assert response.status == 200, response.text
                continue
            method = "auto" if token % 2 == 0 else "sam"
            options = {"method": method}
            if method == "sam":
                options["samples"] = 150
            response = await client.query(
                INDICES[token % len(INDICES)], seed=token, **options
            )
            assert response.status == 200, response.text
            collected.append(
                (
                    response.data["target"],
                    token,
                    response.data["probability"],
                )
            )
    return collected


def _replay(trace: list) -> list:
    """Apply the trace to a fresh engine, checking every recorded batch."""
    engine = _engine()
    checked = []
    for entry in trace:
        if entry["kind"] == "edit":
            arguments = entry["args"]
            if entry["operation"] == "insert_object":
                engine.insert_object(
                    arguments["values"], label=arguments.get("label")
                )
            elif entry["operation"] == "remove_object":
                target = arguments["target"]
                engine.remove_object(
                    target if isinstance(target, int) else list(target)
                )
            else:
                engine.update_preference(
                    arguments["dimension"],
                    arguments["a"],
                    arguments["b"],
                    arguments["prob_a_over_b"],
                    arguments["prob_b_over_a"],
                )
            continue
        result = batch_skyline_probabilities(
            engine,
            indices=entry["indices"],
            seeds=[spawn_request_seed(seed) for seed in entry["seeds"]],
            workers=1,
            cache=engine.cache,
            on_error="raise",
            **entry["options"],
        )
        assert list(result.probabilities) == entry["probabilities"], (
            "single-threaded replay diverged from the served batch"
        )
        checked.extend(
            zip(entry["indices"], entry["seeds"], entry["probabilities"])
        )
    return checked


def test_chaos_traffic_replays_bit_identically():
    trace: list = []

    async def storm():
        server = SkylineServer(
            _engine(),
            ServeConfig(port=0, window=0.02, observe=False),
            trace=trace,
        )
        await server.start()
        try:
            return await asyncio.gather(
                *(
                    _worker(worker_id, server.port)
                    for worker_id in range(WORKERS)
                )
            )
        finally:
            await server.drain()

    per_worker = asyncio.run(storm())

    # The trace holds worker 0's four edits plus every query batch.
    edits = [entry for entry in trace if entry["kind"] == "edit"]
    assert [entry["operation"] for entry in edits] == [
        "insert_object",
        "update_preference",
        "remove_object",
        "update_preference",
    ]

    # Single-threaded replay of the recorded execution order reproduces
    # every batch's probabilities bit-for-bit...
    checked = _replay(trace)

    # ...and the clients saw exactly the traced answers: same requests,
    # same floats, nothing dropped or invented.
    client_answers = Counter(
        answer for answers in per_worker for answer in answers
    )
    traced_answers = Counter(checked)
    assert client_answers == traced_answers
    assert sum(client_answers.values()) == WORKERS * OPS - len(edits)


def test_chaos_replay_is_seed_stable_across_runs():
    # Two storms with the same request seeds may interleave differently,
    # but any request answered in a state with the same object set must
    # report the same probability — pin a sam query that runs before any
    # edit can land by issuing it alone, then run the storm.
    engine = _engine()
    direct = batch_skyline_probabilities(
        engine, indices=[2], seed=707, method="sam", samples=150,
        workers=1,
    ).probabilities[0]

    async def serve_one():
        server = SkylineServer(
            _engine(), ServeConfig(port=0, window=0.005, observe=False)
        )
        await server.start()
        try:
            async with ServeClient("127.0.0.1", server.port) as client:
                response = await client.query(
                    2, seed=707, method="sam", samples=150
                )
                assert response.status == 200
                return response.data["probability"]
        finally:
            await server.drain()

    assert asyncio.run(serve_one()) == direct
