"""Connection caps and client-side retry policy for the serving tier.

Covers the two halves of the tier's new overload story: the server's
``max_connections`` admission cap (over-cap connections get a fast 503
with ``Retry-After`` before any request parsing) and the client's
per-request timeout plus bounded retry — which must apply to idempotent
requests only, because replaying an ``/edit`` whose connection died
could apply it twice.
"""

from __future__ import annotations

import asyncio

import pytest

import repro.obs as obs
from repro import Dataset, DynamicSkylineEngine, PreferenceModel
from repro.errors import RetryExhaustedError, ServingError
from repro.serve import ServeClient, ServeConfig, SkylineServer


def _engine() -> DynamicSkylineEngine:
    objects = [("a", "x"), ("a", "y"), ("b", "x"), ("b", "z")]
    preferences = PreferenceModel(2, default=0.5)
    preferences.set_preference(0, "a", "b", 0.7, 0.2)
    preferences.set_preference(1, "x", "y", 0.55, 0.35)
    preferences.set_preference(1, "x", "z", 0.8, 0.1)
    return DynamicSkylineEngine(Dataset(objects), preferences)


def _serve(test, config: ServeConfig | None = None):
    """Run ``await test(server)`` against a fresh served engine."""

    async def body():
        server = SkylineServer(
            _engine(),
            config
            or ServeConfig(port=0, window=0.01, observe=False),
        )
        await server.start()
        try:
            return await test(server)
        finally:
            await server.drain()

    return asyncio.run(body())


async def _raw_response(port: int) -> str:
    """Connect, send nothing, read until the server closes."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        data = await asyncio.wait_for(reader.read(), timeout=5.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    return data.decode("latin-1")


class TestMaxConnections:
    def _capped(self, limit=1, retry_after=2.5):
        return ServeConfig(
            port=0,
            window=0.01,
            observe=False,
            max_connections=limit,
            retry_after=retry_after,
        )

    def test_over_cap_connection_gets_fast_503_with_retry_after(self):
        async def check(server):
            async with ServeClient("127.0.0.1", server.port) as client:
                # a completed roundtrip guarantees the first connection
                # is registered before the second one arrives
                assert (await client.healthz()).status == 200
                text = await _raw_response(server.port)
            status_line, _, rest = text.partition("\r\n")
            assert " 503 " in status_line
            assert "retry-after: 2.5" in rest.lower()
            assert "AdmissionRejectedError" in rest
            assert "connection limit of 1" in rest

        _serve(check, self._capped())

    def test_connections_below_the_cap_are_served(self):
        async def check(server):
            async with ServeClient("127.0.0.1", server.port) as first:
                assert (await first.healthz()).status == 200
                async with ServeClient("127.0.0.1", server.port) as second:
                    assert (await second.query(0)).status == 200

        _serve(check, self._capped(limit=2))

    def test_closing_a_connection_frees_its_admission_slot(self):
        async def check(server):
            async with ServeClient("127.0.0.1", server.port) as client:
                assert (await client.healthz()).status == 200
            # the slot is released once the server reaps the connection;
            # a fresh client must eventually be admitted again
            for _ in range(50):
                async with ServeClient("127.0.0.1", server.port) as client:
                    try:
                        if (await client.healthz()).status == 200:
                            return
                    except (ConnectionError, ServingError):
                        pass
                await asyncio.sleep(0.02)
            pytest.fail("admission slot was never released")

        _serve(check, self._capped())

    def test_rejections_are_counted_when_observing(self):
        def run():
            async def check(server):
                async with ServeClient("127.0.0.1", server.port) as client:
                    assert (await client.healthz()).status == 200
                    await _raw_response(server.port)
                    await _raw_response(server.port)

            _serve(check, self._capped())

        with obs.enabled() as registry:
            registry.reset()
            run()
            rejected = registry.counter(
                "repro_serve_rejected_connections_total"
            ).value()
        assert rejected == 2


class _CountingServer:
    """A fake server that closes every connection without responding."""

    def __init__(self) -> None:
        self.connections = 0
        self._server: asyncio.AbstractServer | None = None

    async def __aenter__(self) -> "_CountingServer":
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


class _BlackholeServer(_CountingServer):
    """Accepts connections and then never says anything."""

    async def _handle(self, reader, writer) -> None:
        self.connections += 1
        try:
            await asyncio.sleep(3600)
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()


class TestClientRetries:
    def test_timeout_and_retries_raise_retry_exhausted(self):
        async def check():
            async with _BlackholeServer() as fake:
                client = ServeClient(
                    "127.0.0.1",
                    fake.port,
                    timeout=0.05,
                    max_retries=2,
                    backoff=0.001,
                    jitter=0.0,
                )
                with pytest.raises(RetryExhaustedError) as info:
                    await client.request("GET", "/healthz")
                await client.close()
            assert info.value.attempts == 3
            assert isinstance(info.value.last_error, asyncio.TimeoutError)

        asyncio.run(check())

    def test_idempotent_request_reconnects_per_attempt(self):
        async def check():
            async with _CountingServer() as fake:
                client = ServeClient(
                    "127.0.0.1",
                    fake.port,
                    max_retries=2,
                    backoff=0.001,
                    jitter=0.0,
                )
                with pytest.raises(RetryExhaustedError) as info:
                    await client.query(0)
                await client.close()
                assert fake.connections == 3
            assert isinstance(info.value.last_error, ConnectionError)

        asyncio.run(check())

    def test_edit_is_never_retried(self):
        async def check():
            async with _CountingServer() as fake:
                client = ServeClient(
                    "127.0.0.1", fake.port, max_retries=2, backoff=0.001
                )
                # the underlying error surfaces unchanged — no
                # RetryExhaustedError wrapper, and exactly one connect:
                # a dead connection cannot prove the edit was unapplied
                with pytest.raises(ConnectionError):
                    await client.edit("insert_object", values=["c", "x"])
                await client.close()
                assert fake.connections == 1

        asyncio.run(check())

    def test_drain_is_never_retried(self):
        async def check():
            async with _CountingServer() as fake:
                client = ServeClient(
                    "127.0.0.1", fake.port, max_retries=5, backoff=0.001
                )
                with pytest.raises(ConnectionError):
                    await client.drain()
                await client.close()
                assert fake.connections == 1

        asyncio.run(check())

    def test_explicit_idempotent_flag_overrides_the_inference(self):
        async def check():
            async with _CountingServer() as fake:
                client = ServeClient(
                    "127.0.0.1",
                    fake.port,
                    max_retries=1,
                    backoff=0.001,
                    jitter=0.0,
                )
                # a caller vouching that its POST is replay-safe opts in
                with pytest.raises(RetryExhaustedError):
                    await client.request(
                        "POST", "/edit", {"operation": "noop"},
                        idempotent=True,
                    )
                assert fake.connections == 2
                # and an override can also force a GET to fail fast
                with pytest.raises(ConnectionError):
                    await client.request("GET", "/healthz", idempotent=False)
                await client.close()
                assert fake.connections == 3

        asyncio.run(check())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"max_retries": -1},
            {"max_retries": 1.5},
            {"backoff": -0.1},
            {"jitter": -0.5},
        ],
    )
    def test_bad_client_configuration_is_rejected(self, kwargs):
        with pytest.raises(ServingError):
            ServeClient("127.0.0.1", 1, **kwargs)

    def test_retry_succeeds_against_a_recovered_server(self):
        # the real server, reached after one dead connection: the retry
        # path must deliver the answer, not just a prettier error
        async def check(server):
            client = ServeClient(
                "127.0.0.1",
                server.port,
                max_retries=2,
                backoff=0.001,
                jitter=0.0,
            )
            await client.connect()
            # poison the client's current connection so the first
            # attempt fails mid-flight and the retry reconnects
            client._writer.close()
            response = await client.healthz()
            assert response.status == 200
            await client.close()

        _serve(check)
