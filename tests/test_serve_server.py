"""HTTP-level tests of the serving tier.

Every test starts a real :class:`~repro.serve.server.SkylineServer` on
an ephemeral port and talks to it through
:class:`~repro.serve.client.ServeClient` (or a raw socket where the
protocol detail matters), covering the route surface, the
error-to-status mapping, deadline degradation over HTTP, admission
control, metrics exposition, and graceful drain.
"""

from __future__ import annotations

import asyncio
import json

import pytest

import repro.obs as obs
from repro import Dataset, DynamicSkylineEngine, PreferenceModel
from repro.serve import ServeClient, ServeConfig, SkylineServer


def _engine() -> DynamicSkylineEngine:
    objects = [
        ("a", "x"),
        ("a", "y"),
        ("b", "x"),
        ("b", "z"),
        ("c", "y"),
        ("c", "z"),
    ]
    preferences = PreferenceModel(2, default=0.5)
    preferences.set_preference(0, "a", "b", 0.7, 0.2)
    preferences.set_preference(0, "a", "c", 0.6, 0.3)
    preferences.set_preference(0, "b", "c", 0.4, 0.4)
    preferences.set_preference(1, "x", "y", 0.55, 0.35)
    preferences.set_preference(1, "x", "z", 0.8, 0.1)
    preferences.set_preference(1, "y", "z", 0.3, 0.6)
    return DynamicSkylineEngine(Dataset(objects), preferences)


def _serve(test, config: ServeConfig | None = None, **server_kwargs):
    """Run ``await test(server, client)`` against a fresh served engine."""

    async def body():
        server = SkylineServer(
            _engine(),
            config or ServeConfig(port=0, window=0.01, observe=False),
            **server_kwargs,
        )
        await server.start()
        try:
            async with ServeClient("127.0.0.1", server.port) as client:
                return await test(server, client)
        finally:
            await server.drain()

    return asyncio.run(body())


class TestRoutes:
    def test_healthz_reports_ok_and_cardinality(self):
        async def check(server, client):
            response = await client.healthz()
            assert response.status == 200
            assert response.data["status"] == "ok"
            assert response.data["objects"] == 6
            assert response.data["pending"] == 0

        _serve(check)

    def test_query_roundtrip_reports_the_engine_answer(self):
        async def check(server, client):
            response = await client.query(0)
            assert response.status == 200
            data = response.data
            assert data["target"] == 0
            assert data["exact"] is True
            assert data["degraded"] is False
            assert data["batch_size"] == 1
            assert data["coalesced"] is False
            assert (
                data["probability"]
                == server.engine.skyline_probabilities()[0]
            )

        _serve(check)

    def test_shared_client_serialises_concurrent_coroutines(self):
        # One ServeClient is one connection; four coroutines racing on
        # it must queue behind the request lock, not interleave reads.
        async def check(server, client):
            responses = await asyncio.gather(
                *(client.query(index) for index in range(4))
            )
            assert [r.status for r in responses] == [200] * 4
            assert [r.data["target"] for r in responses] == [0, 1, 2, 3]

        _serve(check)

    def test_keep_alive_serves_sequential_requests(self):
        async def check(server, client):
            first = await client.query(0)
            second = await client.query(1)
            assert first.status == second.status == 200
            assert first.data["target"] == 0
            assert second.data["target"] == 1

        _serve(check)

    def test_edit_insert_then_duplicate_conflict(self):
        async def check(server, client):
            inserted = await client.edit(
                "insert_object", values=["c", "x"]
            )
            assert inserted.status == 200
            assert inserted.data["operation"] == "insert"
            assert inserted.data["objects"] == 7
            duplicate = await client.edit(
                "insert_object", values=["c", "x"]
            )
            assert duplicate.status == 409
            assert (
                duplicate.data["error"]["type"] == "DuplicateObjectError"
            )

        _serve(check)

    def test_edit_remove_and_update_preference(self):
        async def check(server, client):
            removed = await client.edit("remove_object", target=5)
            assert removed.status == 200
            assert removed.data["objects"] == 5
            updated = await client.edit(
                "update_preference",
                dimension=0, a="a", b="b",
                prob_a_over_b=0.6, prob_b_over_a=0.3,
            )
            assert updated.status == 200
            assert updated.data["cache_evictions"] >= 0
            assert (
                server.engine.preferences.prob_prefers(0, "a", "b") == 0.6
            )

        _serve(check)

    def test_deadline_degrades_over_http(self):
        async def check(server, client):
            response = await client.query(
                0, method="det", deadline=1e-9, samples=120, seed=9
            )
            assert response.status == 200
            assert response.data["degraded"] is True
            assert response.data["method"] == "sam"
            assert response.data["samples"] == 120
            assert response.data["overrun_seconds"] > 0.0

        _serve(check)

    def test_max_overrun_truncates_over_http(self):
        async def check(server, client):
            response = await client.query(
                0, method="det", deadline=1e-9, max_overrun=0.0,
                samples=400_000, seed=9,
            )
            assert response.status == 200
            assert response.data["degraded"] is True
            assert 0 < response.data["samples"] < 400_000
            assert "truncated" in response.data["degradation_reason"]

        _serve(check)

    def test_on_deadline_raise_maps_to_504(self):
        async def check(server, client):
            response = await client.query(
                0, method="det", deadline=1e-9, on_deadline="raise"
            )
            assert response.status == 504
            assert (
                response.data["error"]["type"] == "DeadlineExceededError"
            )

        _serve(check)


class TestProtocolErrors:
    def test_unknown_route_is_404(self):
        async def check(server, client):
            response = await client.request("GET", "/nope")
            assert response.status == 404
            assert response.data["error"]["type"] == "ServingError"

        _serve(check)

    def test_wrong_method_is_405(self):
        async def check(server, client):
            response = await client.request("GET", "/query")
            assert response.status == 405

        _serve(check)

    def test_query_without_index_is_400(self):
        async def check(server, client):
            response = await client.request("POST", "/query", {"seed": 1})
            assert response.status == 400

        _serve(check)

    def test_unknown_query_option_is_400(self):
        async def check(server, client):
            response = await client.query(0, typo_option=True)
            assert response.status == 400
            assert "typo_option" in response.data["error"]["message"]

        _serve(check)

    def test_stale_index_is_400_with_dataset_error(self):
        async def check(server, client):
            response = await client.query(99)
            assert response.status == 400
            assert response.data["error"]["type"] == "DatasetError"

        _serve(check)

    def test_bad_edit_operation_is_400(self):
        async def check(server, client):
            response = await client.edit("drop_table")
            assert response.status == 400

        _serve(check)

    def test_malformed_json_is_400(self):
        async def check(server, client):
            raw = b"this is not json"
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /query HTTP/1.1\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {len(raw)}\r\n\r\n".encode()
                + raw
            )
            await writer.drain()
            status_line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            assert b"400" in status_line

        _serve(check)

    def test_oversized_body_is_413_and_closes(self):
        async def check(server, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /query HTTP/1.1\r\n"
                b"Content-Length: 99999999\r\n\r\n"
            )
            await writer.drain()
            status_line = await reader.readline()
            assert b"413" in status_line
            # Headers + body, then EOF: the server closed the socket.
            remainder = await reader.read()
            assert b"Connection: close" in remainder
            writer.close()
            await writer.wait_closed()

        _serve(
            check,
            ServeConfig(
                port=0, window=0.01, observe=False, max_body_bytes=1024
            ),
        )

    def test_connection_close_header_is_honoured(self):
        async def check(server, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            response = await reader.read()  # EOF == connection closed
            assert b"200" in response.splitlines()[0]
            assert b"Connection: close" in response
            writer.close()
            await writer.wait_closed()

        _serve(check)


class TestAdmissionControl:
    def test_admission_rejection_maps_to_429(self):
        async def check(server, client):
            # The long window parks the first query; the bound of one
            # makes the second arrival the structured 429.
            async with ServeClient("127.0.0.1", server.port) as second:
                parked = asyncio.ensure_future(
                    client.query(0, seed=1, method="sam", samples=100)
                )
                # Wait until the parked query occupies the bound, so the
                # next arrival cannot coalesce with it instead of being
                # rejected.
                for _ in range(500):
                    if server.coalescer.pending >= 1:
                        break
                    await asyncio.sleep(0.005)
                assert server.coalescer.pending >= 1
                rejected = await second.query(
                    1, seed=2, method="sam", samples=100
                )
                assert rejected.status == 429
                assert (
                    rejected.data["error"]["type"]
                    == "AdmissionRejectedError"
                )
                assert "max_pending" in rejected.data["error"]["message"]
                server.coalescer.flush()
                parked_response = await parked
                assert parked_response.status == 200

        _serve(
            check,
            ServeConfig(
                port=0, window=30.0, max_pending=1, observe=False
            ),
        )


class TestMetricsAndDrain:
    def test_metrics_exposes_serving_families(self):
        async def check(server, client):
            await client.query(0, seed=1, method="sam", samples=100)
            await client.edit("insert_object", values=["c", "x"])
            await client.query(99)  # an error outcome
            response = await client.metrics()
            assert response.status == 200
            assert response.content_type.startswith("text/plain")
            for family in (
                "repro_serve_requests_total",
                "repro_serve_request_seconds",
                "repro_serve_coalesced_batches_total",
                "repro_serve_batch_size",
                "repro_serve_edits_total",
            ):
                assert family in response.text, family
            assert 'endpoint="/query"' in response.text
            assert 'outcome="error"' in response.text

        previously_enabled = obs.is_enabled()
        _serve(
            check, ServeConfig(port=0, window=0.01, observe=True)
        )
        # The server enabled the registry for its own lifetime only.
        assert obs.is_enabled() == previously_enabled

    def test_drain_endpoint_stops_serve_forever(self):
        async def body():
            server = SkylineServer(
                _engine(), ServeConfig(port=0, window=0.01, observe=False)
            )
            await server.start()
            forever = asyncio.ensure_future(server.serve_forever())
            async with ServeClient("127.0.0.1", server.port) as client:
                before = await client.query(0)
                assert before.status == 200
                drained = await client.drain()
                assert drained.status == 202
                assert drained.data["status"] == "draining"
            await asyncio.wait_for(forever, timeout=10)
            assert server.draining is True

        asyncio.run(body())

    def test_draining_server_refuses_queries_and_health(self):
        async def check(server, client):
            # White-box: flip the drain flag without closing the
            # listener, so the 503 mapping itself is observable.
            server._draining = True
            query = await client.query(0)
            health = await client.healthz()
            server._draining = False
            assert query.status == 503
            assert health.status == 503
            assert query.data["error"]["type"] == "ServingError"

        _serve(check)

    def test_drain_is_idempotent(self):
        async def body():
            server = SkylineServer(
                _engine(), ServeConfig(port=0, window=0.01, observe=False)
            )
            await server.start()
            await asyncio.gather(server.drain(), server.drain())
            await server.drain()

        asyncio.run(body())

    def test_port_property_requires_start(self):
        from repro.errors import ServingError

        async def body():
            server = SkylineServer(
                _engine(), ServeConfig(port=0, observe=False)
            )
            with pytest.raises(ServingError):
                server.port
            await server.start()
            assert server.port > 0
            assert server.address == ("127.0.0.1", server.port)
            await server.drain()

        asyncio.run(body())
