"""Unit tests for the classical (certain) skyline substrate."""

from __future__ import annotations

import pytest

from repro.core.objects import Dataset
from repro.core.preferences import PreferenceModel
from repro.core.skyline import (
    deterministic_skyline,
    expected_skyline_size,
    is_skyline_point_under_oracle,
    skyline_under_oracle,
)
from repro.errors import PreferenceError


def _chain_prefs(values):
    """Certain preferences: earlier values strictly preferred (per dim)."""
    model = PreferenceModel(len(values))
    for dimension, ordered in enumerate(values):
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                model.set_preference(dimension, a, b, 1.0)
    return model


class TestDeterministicSkyline:
    def test_single_best_object(self):
        dataset = Dataset([("good", "good"), ("bad", "good"), ("bad", "bad")])
        model = _chain_prefs([["good", "bad"], ["good", "bad"]])
        assert deterministic_skyline(dataset, model) == [0]

    def test_pareto_incomparable_objects(self):
        dataset = Dataset([("good", "bad"), ("bad", "good")])
        model = _chain_prefs([["good", "bad"], ["good", "bad"]])
        assert deterministic_skyline(dataset, model) == [0, 1]

    def test_uncertain_preference_rejected(self):
        dataset = Dataset([("a", "x"), ("b", "y")])
        with pytest.raises(PreferenceError):
            deterministic_skyline(dataset, PreferenceModel.equal(2))

    def test_incomparable_values_keep_both(self):
        dataset = Dataset([("a",), ("b",)])
        model = PreferenceModel(1)
        model.set_preference(0, "a", "b", 0.0, 0.0)  # certainly incomparable
        assert deterministic_skyline(dataset, model) == [0, 1]

    def test_dominance_chain(self):
        dataset = Dataset([("v1",), ("v2",), ("v3",)])
        model = _chain_prefs([["v1", "v2", "v3"]])
        assert deterministic_skyline(dataset, model) == [0]


class TestSkylineUnderOracle:
    def test_oracle_controls_outcome(self):
        dataset = Dataset([("a", "x"), ("b", "y")])

        def first_always_wins(dimension, u, v):
            return (u, v) in {("a", "b"), ("x", "y")}

        assert skyline_under_oracle(dataset, first_always_wins) == [0]

    def test_is_skyline_point_consistency(self):
        dataset = Dataset([("a", "x"), ("b", "y"), ("a", "y")])

        def nobody_wins(dimension, u, v):
            return False

        skyline = skyline_under_oracle(dataset, nobody_wins)
        assert skyline == [0, 1, 2]
        assert all(
            is_skyline_point_under_oracle(dataset, index, nobody_wins)
            for index in range(3)
        )

    def test_shared_values_skip_oracle(self):
        dataset = Dataset([("a", "x"), ("a", "y")])
        calls = []

        def recording(dimension, u, v):
            calls.append((dimension, u, v))
            return True

        skyline_under_oracle(dataset, recording)
        assert all(dimension == 1 for dimension, _, _ in calls)


class TestExpectedSkylineSize:
    def test_linearity(self):
        assert expected_skyline_size([0.5, 0.25, 0.25]) == pytest.approx(1.0)

    def test_empty(self):
        assert expected_skyline_size([]) == 0.0

    def test_matches_naive_enumeration(self, running):
        from repro.core.naive import skyline_probabilities_naive

        dataset, preferences = running
        probabilities = skyline_probabilities_naive(preferences, dataset)
        # expectation over worlds must match the sum of probabilities
        from repro.core.naive import enumerate_worlds
        from repro.core.skyline import skyline_under_oracle as oracle_skyline

        expectation = 0.0
        for world, probability in enumerate_worlds(preferences, dataset):
            size = len(
                oracle_skyline(
                    dataset, lambda d, a, b: world[(d, a, b)]
                )
            )
            expectation += probability * size
        assert expected_skyline_size(probabilities) == pytest.approx(expectation)
