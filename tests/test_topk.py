"""Unit tests for the shared-world all-objects estimator and top-k."""

from __future__ import annotations

import pytest

from repro.core.naive import skyline_probabilities_naive
from repro.core.objects import Dataset
from repro.core.preferences import PreferenceModel
from repro.core.topk import (
    estimate_all_skyline_probabilities,
    top_k_shared_worlds,
)
from repro.errors import EstimationError


class TestEstimateAll:
    def test_matches_naive_on_running_example(self, running):
        dataset, preferences = running
        estimate = estimate_all_skyline_probabilities(
            preferences, dataset, samples=30000, seed=1
        )
        naive = skyline_probabilities_naive(preferences, dataset)
        for value, reference in zip(estimate.probabilities, naive):
            assert value == pytest.approx(reference, abs=0.01)

    def test_matches_naive_with_incomparability(self):
        dataset = Dataset([("a", "x"), ("b", "y"), ("a", "y")])
        preferences = PreferenceModel(2)
        preferences.set_preference(0, "a", "b", 0.5, 0.2)
        preferences.set_preference(1, "x", "y", 0.3, 0.3)
        estimate = estimate_all_skyline_probabilities(
            preferences, dataset, samples=30000, seed=2
        )
        naive = skyline_probabilities_naive(preferences, dataset)
        for value, reference in zip(estimate.probabilities, naive):
            assert value == pytest.approx(reference, abs=0.01)

    def test_hoisted_gathers_match_per_iteration_reference(self, running):
        # the requirement gathers are hoisted out of the chunk loop; the
        # estimates must be bit-identical to the straightforward
        # per-iteration np.delete transcription on the same seed
        import numpy as np

        from repro.core.topk import _build_requirements
        from repro.util.rng import as_rng

        dataset, preferences = running
        samples, seed, chunk_size = 512, 97, 128
        estimate = estimate_all_skyline_probabilities(
            preferences, dataset, samples=samples, seed=seed,
            chunk_size=chunk_size,
        )
        forward_probs, backward_probs, columns = _build_requirements(
            preferences, dataset
        )
        n = len(dataset)
        rng = as_rng(seed)
        successes = np.zeros(n, dtype=np.int64)
        remaining = samples
        while remaining > 0:
            chunk = min(chunk_size, remaining)
            remaining -= chunk
            draws = rng.random((chunk, forward_probs.size))
            forward_wins = draws < forward_probs
            backward_wins = (~forward_wins) & (
                draws < forward_probs + backward_probs
            )
            resolved = np.concatenate(
                [forward_wins, backward_wins, np.ones((chunk, 1), dtype=bool)],
                axis=1,
            )
            for b_index in range(n):
                requirement = np.delete(columns[:, b_index, :], b_index, axis=0)
                gathered = resolved[:, requirement]
                dominated = gathered.all(axis=2).any(axis=1)
                successes[b_index] += int((~dominated).sum())
        expected = tuple((successes / samples).tolist())
        assert estimate.probabilities == expected

    def test_deterministic_with_seed(self, running):
        dataset, preferences = running
        a = estimate_all_skyline_probabilities(
            preferences, dataset, samples=500, seed=3
        )
        b = estimate_all_skyline_probabilities(
            preferences, dataset, samples=500, seed=3
        )
        assert a.probabilities == b.probabilities

    def test_result_shape(self, running):
        dataset, preferences = running
        estimate = estimate_all_skyline_probabilities(
            preferences, dataset, samples=100, seed=0
        )
        assert len(estimate.probabilities) == len(dataset)
        assert estimate.samples == 100
        assert all(0.0 <= p <= 1.0 for p in estimate.probabilities)

    def test_error_radius(self, running):
        dataset, preferences = running
        estimate = estimate_all_skyline_probabilities(
            preferences, dataset, samples=3000, seed=0
        )
        assert 0.0 < estimate.error_radius(0.01) < 0.1

    def test_invalid_samples(self, running):
        dataset, preferences = running
        with pytest.raises(EstimationError):
            estimate_all_skyline_probabilities(preferences, dataset, samples=0)

    def test_invalid_chunk(self, running):
        dataset, preferences = running
        with pytest.raises(EstimationError):
            estimate_all_skyline_probabilities(
                preferences, dataset, samples=10, chunk_size=0
            )

    def test_certain_preferences_exact(self):
        dataset = Dataset([("best",), ("worst",)])
        preferences = PreferenceModel(1)
        preferences.set_preference(0, "best", "worst", 1.0)
        estimate = estimate_all_skyline_probabilities(
            preferences, dataset, samples=50, seed=4
        )
        assert estimate.probabilities == (1.0, 0.0)

    def test_mutually_exclusive_orientations(self):
        # forward and backward outcomes must never both fire: with
        # Pr(a<b)=Pr(b<a)=0.5 exactly one of the two objects wins per world
        dataset = Dataset([("a",), ("b",)])
        estimate = estimate_all_skyline_probabilities(
            PreferenceModel.equal(1), dataset, samples=4000, seed=5
        )
        total = sum(estimate.probabilities)
        assert total == pytest.approx(1.0, abs=0.05)


class TestTopKSharedWorlds:
    def test_ranking_matches_exact_order(self, observation):
        dataset, preferences = observation
        ranked = top_k_shared_worlds(
            preferences, dataset, k=3, samples=20000, seed=6
        )
        assert [index for index, _ in ranked] == [0, 2, 1]
        assert ranked[0][1] == pytest.approx(0.5, abs=0.02)

    def test_k_truncates(self, observation):
        dataset, preferences = observation
        assert len(top_k_shared_worlds(preferences, dataset, 2, samples=200)) == 2

    def test_invalid_k(self, observation):
        dataset, preferences = observation
        with pytest.raises(EstimationError):
            top_k_shared_worlds(preferences, dataset, 0)
