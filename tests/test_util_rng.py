"""Unit tests for seeded RNG helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert as_rng(42).random() == as_rng(42).random()

    def test_different_seeds_differ(self):
        assert as_rng(1).random() != as_rng(2).random()

    def test_generator_passes_through_unchanged(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        assert isinstance(as_rng(sequence), np.random.Generator)

    def test_numpy_integer_accepted(self):
        assert as_rng(np.int64(5)).random() == as_rng(5).random()

    def test_invalid_seed_rejected(self):
        with pytest.raises(TypeError):
            as_rng("not a seed")


class TestSpawnRngs:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_zero(self):
        assert list(spawn_rngs(0, 0)) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(123, 3)
        draws = [rng.random() for rng in children]
        assert len(set(draws)) == 3

    def test_spawning_is_deterministic(self):
        first = [rng.random() for rng in spawn_rngs(9, 4)]
        second = [rng.random() for rng in spawn_rngs(9, 4)]
        assert first == second

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(11)
        children = spawn_rngs(parent, 2)
        assert len(children) == 2
        assert children[0].random() != children[1].random()

    def test_spawn_from_seed_sequence(self):
        children = spawn_rngs(np.random.SeedSequence(3), 2)
        assert children[0].random() != children[1].random()
