"""Unit tests for subset iteration helpers."""

from __future__ import annotations

import pytest

from repro.util.subsets import iter_subsets, iter_subsets_of_size, popcount


class TestIterSubsets:
    def test_all_nonempty_subsets(self):
        subsets = list(iter_subsets([1, 2, 3]))
        assert subsets == [
            (1,), (2,), (3,), (1, 2), (1, 3), (2, 3), (1, 2, 3),
        ]

    def test_include_empty(self):
        subsets = list(iter_subsets([1, 2], include_empty=True))
        assert subsets[0] == ()
        assert len(subsets) == 4

    def test_max_size_truncates(self):
        subsets = list(iter_subsets([1, 2, 3], max_size=2))
        assert all(len(s) <= 2 for s in subsets)
        assert len(subsets) == 6

    def test_max_size_beyond_length_is_fine(self):
        assert len(list(iter_subsets([1, 2], max_size=10))) == 3

    def test_negative_max_size_rejected(self):
        with pytest.raises(ValueError):
            list(iter_subsets([1], max_size=-1))

    def test_empty_input(self):
        assert list(iter_subsets([])) == []
        assert list(iter_subsets([], include_empty=True)) == [()]

    def test_sizes_are_nondecreasing(self):
        sizes = [len(s) for s in iter_subsets(list(range(5)))]
        assert sizes == sorted(sizes)

    def test_count_matches_powerset(self):
        assert len(list(iter_subsets(range(6)))) == 2**6 - 1


class TestIterSubsetsOfSize:
    def test_exact_size(self):
        subsets = list(iter_subsets_of_size([1, 2, 3, 4], 2))
        assert len(subsets) == 6
        assert all(len(s) == 2 for s in subsets)

    def test_size_zero(self):
        assert list(iter_subsets_of_size([1, 2], 0)) == [()]

    def test_size_above_length(self):
        assert list(iter_subsets_of_size([1, 2], 3)) == []

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            iter_subsets_of_size([1], -2)


class TestPopcount:
    @pytest.mark.parametrize(
        "mask, expected",
        [(0, 0), (1, 1), (2, 1), (3, 2), (255, 8), (1 << 40, 1)],
    )
    def test_values(self, mask, expected):
        assert popcount(mask) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)
