"""Unit tests for the wall-clock timer."""

from __future__ import annotations

import time

from repro.util.timer import Timer


class TestTimer:
    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_measures_duration(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_not_running_after_exit(self):
        with Timer() as timer:
            pass
        assert not timer.running

    def test_running_inside_block(self):
        with Timer() as timer:
            assert timer.running
            live = timer.elapsed
            assert live >= 0.0

    def test_elapsed_frozen_after_exit(self):
        with Timer() as timer:
            time.sleep(0.001)
        first = timer.elapsed
        time.sleep(0.005)
        assert timer.elapsed == first

    def test_reusable(self):
        timer = Timer()
        with timer:
            time.sleep(0.001)
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed <= first
