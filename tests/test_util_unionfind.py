"""Unit tests for the union-find structure."""

from __future__ import annotations

import pytest

from repro.util.unionfind import UnionFind


class TestBasics:
    def test_new_element_is_its_own_component(self):
        uf = UnionFind()
        assert uf.find("a") == "a"
        assert len(uf) == 1

    def test_constructor_registers_elements(self):
        uf = UnionFind(["a", "b", "c"])
        assert len(uf) == 3
        assert uf.component_count() == 3

    def test_contains(self):
        uf = UnionFind(["a"])
        assert "a" in uf
        assert "b" not in uf

    def test_add_is_idempotent(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(1)
        assert len(uf) == 1

    def test_union_merges(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")
        assert uf.component_count() == 1

    def test_union_returns_root(self):
        uf = UnionFind()
        root = uf.union("a", "b")
        assert root in ("a", "b")
        assert uf.find("a") == root == uf.find("b")

    def test_disjoint_elements_not_connected(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")

    def test_union_same_component_is_noop(self):
        uf = UnionFind()
        uf.union("a", "b")
        before = uf.component_count()
        uf.union("a", "b")
        assert uf.component_count() == before

    def test_transitive_connectivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(4, 5)
        assert uf.connected(1, 3)
        assert not uf.connected(3, 4)
        assert uf.component_count() == 2

    def test_components_partition_all_elements(self):
        uf = UnionFind(range(10))
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        components = uf.components()
        flattened = sorted(element for group in components for element in group)
        assert flattened == list(range(10))
        sizes = sorted(len(group) for group in components)
        assert sizes == [1, 1, 1, 1, 1, 2, 3]

    def test_components_deterministic_order(self):
        uf1 = UnionFind(["x", "y", "z"])
        uf1.union("x", "z")
        uf2 = UnionFind(["x", "y", "z"])
        uf2.union("x", "z")
        assert uf1.components() == uf2.components()

    def test_long_chain_path_compression(self):
        uf = UnionFind()
        for i in range(1000):
            uf.union(i, i + 1)
        assert uf.connected(0, 1000)
        assert uf.component_count() == 1

    def test_mixed_hashable_types(self):
        uf = UnionFind()
        uf.union(("dim", 0), "value")
        assert uf.connected(("dim", 0), "value")
