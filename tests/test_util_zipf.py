"""Unit tests for finite-support Zipf sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.zipf import zipf_probabilities, zipf_sample


class TestZipfProbabilities:
    def test_sums_to_one(self):
        assert zipf_probabilities(10).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probabilities = zipf_probabilities(8, theta=1.0)
        assert all(
            probabilities[i] > probabilities[i + 1]
            for i in range(len(probabilities) - 1)
        )

    def test_theta_one_exact_ratios(self):
        probabilities = zipf_probabilities(4, theta=1.0)
        # weights 1, 1/2, 1/3, 1/4 -> normaliser 25/12
        assert probabilities[0] == pytest.approx(12 / 25)
        assert probabilities[3] == pytest.approx(3 / 25)

    def test_theta_zero_is_uniform(self):
        probabilities = zipf_probabilities(5, theta=0.0)
        assert np.allclose(probabilities, 0.2)

    def test_single_support(self):
        assert zipf_probabilities(1).tolist() == [1.0]

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0)

    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            zipf_probabilities(5, theta=-0.1)


class TestZipfSample:
    def test_range(self):
        draws = zipf_sample(6, 500, seed=0)
        assert draws.min() >= 0
        assert draws.max() <= 5

    def test_deterministic_with_seed(self):
        assert zipf_sample(6, 50, seed=1).tolist() == zipf_sample(6, 50, seed=1).tolist()

    def test_skew_toward_low_ranks(self):
        draws = zipf_sample(10, 5000, theta=1.0, seed=2)
        counts = np.bincount(draws, minlength=10)
        assert counts[0] > counts[5] > 0

    def test_shape_tuple(self):
        assert zipf_sample(4, (3, 2), seed=3).shape == (3, 2)
