"""Unit tests for preference-coverage validation."""

from __future__ import annotations

import pytest

from repro.core.objects import Dataset
from repro.core.preferences import PreferenceModel
from repro.core.validate import missing_preference_pairs, validate_coverage
from repro.data.procedural import HashedPreferenceModel
from repro.errors import PreferenceError


@pytest.fixture
def dataset():
    return Dataset([("a", "x"), ("b", "y"), ("c", "x")])


class TestMissingPairs:
    def test_reports_all_unset_pairs(self, dataset):
        model = PreferenceModel(2)
        model.set_preference(0, "a", "b", 0.5)
        missing = missing_preference_pairs(model, dataset)
        # dim 0 pairs: (a,b) set, (a,c), (b,c) missing; dim 1: (x,y) missing
        assert (0, "a", "c") in missing
        assert (0, "b", "c") in missing
        assert (1, "x", "y") in missing
        assert len(missing) == 3

    def test_empty_when_fully_covered(self, dataset):
        model = PreferenceModel(2)
        for a, b in (("a", "b"), ("a", "c"), ("b", "c")):
            model.set_preference(0, a, b, 0.5)
        model.set_preference(1, "x", "y", 0.5)
        assert missing_preference_pairs(model, dataset) == []

    def test_default_policy_counts_as_covered(self, dataset):
        assert missing_preference_pairs(PreferenceModel.equal(2), dataset) == []

    def test_procedural_model_always_covered(self, dataset):
        model = HashedPreferenceModel(2, seed=1)
        assert missing_preference_pairs(model, dataset) == []

    def test_deterministic_order(self, dataset):
        model = PreferenceModel(2)
        first = missing_preference_pairs(model, dataset)
        second = missing_preference_pairs(model, dataset)
        assert first == second

    def test_dimensionality_mismatch(self, dataset):
        with pytest.raises(PreferenceError):
            missing_preference_pairs(PreferenceModel(3), dataset)


class TestValidateCoverage:
    def test_passes_when_covered(self, dataset):
        validate_coverage(PreferenceModel.equal(2), dataset)

    def test_raises_with_counts(self, dataset):
        with pytest.raises(PreferenceError, match="4 value pair"):
            validate_coverage(PreferenceModel(2), dataset)

    def test_long_reports_truncated(self):
        dataset = Dataset([(f"v{i}",) for i in range(8)])  # 28 pairs
        with pytest.raises(PreferenceError, match="and 23 more"):
            validate_coverage(PreferenceModel(1), dataset)
